// Distributed gauge I/O tests: per-rank files + manifest and the rank-0
// single-file collectives, over the in-process SimCommunicator and over
// REAL forked rank processes on the socket transport.
#include "io/dist_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "comms/socket.h"
#include "qcd/su3.h"
#include "sve/sve.h"

namespace svelat::io {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;

std::string temp_dir(const std::string& name) {
  return ::testing::TempDir() + "svelat_dist_" + name;
}

class DistributedIoTest : public ::testing::Test {
 protected:
  static constexpr int kRanks = 2;

  void SetUp() override {
    sve::set_vector_length(256);
    dims_ = {4, 4, 4, 8};
    layout_ = comms::split_simd_layout(dims_, /*split_dim=*/3, S::Nsimd());
    decomp_ = std::make_unique<comms::RankDecomposition>(dims_, 3, kRanks, layout_);
    global_grid_ = std::make_unique<lattice::GridCartesian>(dims_, layout_);
    global_ = std::make_unique<qcd::GaugeField<S>>(global_grid_.get());
    qcd::random_gauge(SiteRNG(2026), *global_);
    for (int r = 0; r < kRanks; ++r) {
      locals_.push_back(std::make_unique<qcd::GaugeField<S>>(decomp_->grid(r)));
      for (int mu = 0; mu < lattice::Nd; ++mu)
        locals_.back()->U[mu] = comms::scatter_rank(*decomp_, global_->U[mu], r);
    }
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// In-process driver: save every rank's file (senders before rank 0,
  /// which collects the CRCs and writes the manifest).
  void save_all(comms::Communicator& comm, const std::vector<std::uint8_t>& meta = {}) {
    for (int r = kRanks - 1; r >= 0; --r)
      save_gauge_distributed(dir_, *decomp_, comm, r, *locals_[static_cast<std::size_t>(r)],
                             meta);
  }

  lattice::Coordinate dims_;
  lattice::Coordinate layout_;
  std::unique_ptr<comms::RankDecomposition> decomp_;
  std::unique_ptr<lattice::GridCartesian> global_grid_;
  std::unique_ptr<qcd::GaugeField<S>> global_;
  std::vector<std::unique_ptr<qcd::GaugeField<S>>> locals_;
  std::string dir_ = temp_dir("dir");
};

TEST_F(DistributedIoTest, PerRankRoundTripIsBitwise) {
  comms::SimCommunicator comm(kRanks);
  const std::vector<std::uint8_t> meta = {7, 7, 7};
  save_all(comm, meta);
  EXPECT_TRUE(std::filesystem::exists(manifest_file_name(dir_)));
  for (int r = 0; r < kRanks; ++r) {
    qcd::GaugeField<S> loaded(decomp_->grid(r));
    const auto got_meta = load_gauge_distributed(dir_, *decomp_, r, loaded);
    EXPECT_EQ(got_meta, meta);
    EXPECT_EQ(encode_gauge(loaded), encode_gauge(*locals_[static_cast<std::size_t>(r)]))
        << "rank " << r;
  }
}

TEST_F(DistributedIoTest, ManifestPinsTheDecomposition) {
  comms::SimCommunicator comm(kRanks);
  save_all(comm);
  // Same lattice, different rank count: the manifest refuses.
  const comms::RankDecomposition other(dims_, 3, 4, comms::split_simd_layout(dims_, 3,
                                                                             S::Nsimd()));
  qcd::GaugeField<S> local(other.grid(0));
  try {
    load_gauge_distributed(dir_, other, 0, local);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), IoErrorCode::kMismatch);
    EXPECT_NE(std::string(e.what()).find("ranks"), std::string::npos);
  }
}

TEST_F(DistributedIoTest, CorruptManifestIsRejected) {
  comms::SimCommunicator comm(kRanks);
  save_all(comm);
  auto bytes = read_file_bytes(manifest_file_name(dir_));
  bytes[8] ^= 0x01;  // a global-dims byte
  write_file_bytes(manifest_file_name(dir_), bytes);
  qcd::GaugeField<S> local(decomp_->grid(0));
  try {
    load_gauge_distributed(dir_, *decomp_, 0, local);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), IoErrorCode::kBadManifest);
  }
}

TEST_F(DistributedIoTest, SwappedRankFilesAreDetected) {
  comms::SimCommunicator comm(kRanks);
  save_all(comm);
  // Swap the two rank files: each still decodes as a valid SVGF file, but
  // the manifest CRCs expose that rank 0 would load rank 1's sub-lattice.
  const std::string f0 = rank_file_name(dir_, 0), f1 = rank_file_name(dir_, 1);
  const auto b0 = read_file_bytes(f0), b1 = read_file_bytes(f1);
  write_file_bytes(f0, b1);
  write_file_bytes(f1, b0);
  qcd::GaugeField<S> local(decomp_->grid(0));
  try {
    load_gauge_distributed(dir_, *decomp_, 0, local);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), IoErrorCode::kRankFileMismatch);
    EXPECT_NE(std::string(e.what()).find("manifest"), std::string::npos);
  }
}

TEST_F(DistributedIoTest, MissingRankFileFailsToOpen) {
  comms::SimCommunicator comm(kRanks);
  save_all(comm);
  std::filesystem::remove(rank_file_name(dir_, 1));
  qcd::GaugeField<S> local(decomp_->grid(1));
  try {
    load_gauge_distributed(dir_, *decomp_, 1, local);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), IoErrorCode::kOpenFailed);
  }
}

TEST_F(DistributedIoTest, RootSingleFileEqualsALocalSave) {
  // Gathering to rank 0 and saving must produce byte-identical output to
  // saving the global field directly: the format is layout-independent.
  comms::SimCommunicator comm(kRanks);
  const std::string path = dir_ + "/root.svgf";
  std::filesystem::create_directories(dir_);
  for (int r = kRanks - 1; r >= 0; --r)
    save_gauge_root(path, *decomp_, comm, r, *locals_[static_cast<std::size_t>(r)]);
  EXPECT_EQ(read_file_bytes(path), encode_gauge(*global_));

  // And the symmetric load scatters the same sub-lattices back.
  std::vector<qcd::GaugeField<S>> loaded;
  for (int r = 0; r < kRanks; ++r) loaded.emplace_back(decomp_->grid(r));
  for (int r = 0; r < kRanks; ++r)
    load_gauge_root(path, *decomp_, comm, r, loaded[static_cast<std::size_t>(r)]);
  for (int r = 0; r < kRanks; ++r)
    EXPECT_EQ(encode_gauge(loaded[static_cast<std::size_t>(r)]),
              encode_gauge(*locals_[static_cast<std::size_t>(r)]));
}

TEST_F(DistributedIoTest, RealRankProcessesRoundTripOverSockets) {
  // The full distributed story with REAL forked processes: every rank
  // writes its file, rank 0 writes the manifest, the barrier publishes
  // it, every rank reloads and checks bitwise against what it wrote.
  const std::string dir = dir_;
  const auto dims = dims_;
  const auto layout = layout_;
  const auto report = comms::run_ranks(kRanks, [&](int rank,
                                                   comms::SocketCommunicator& comm) {
    const comms::RankDecomposition decomp(dims, 3, comm.size(), layout);
    lattice::GridCartesian global_grid(dims, layout);
    qcd::GaugeField<S> global(&global_grid);
    qcd::random_gauge(SiteRNG(2026), global);  // deterministic in every process
    qcd::GaugeField<S> local(decomp.grid(rank));
    for (int mu = 0; mu < lattice::Nd; ++mu)
      local.U[mu] = comms::scatter_rank(decomp, global.U[mu], rank);

    save_gauge_distributed(dir, decomp, comm, rank, local);
    manifest_barrier(comm, rank);

    qcd::GaugeField<S> loaded(decomp.grid(rank));
    load_gauge_distributed(dir, decomp, rank, loaded);
    if (encode_gauge(loaded) != encode_gauge(local)) return 1;

    // Single-file path: rank 0's gathered file == the global field's bytes.
    const std::string root = dir + "/root_socket.svgf";
    save_gauge_root(root, decomp, comm, rank, local);
    if (rank == 0 && read_file_bytes(root) != encode_gauge(global)) return 2;
    return 0;
  });
  EXPECT_TRUE(report.ok) << report.describe();
}

TEST_F(DistributedIoTest, ManifestBarrierTimesOutWithTypedError) {
  // Rank 0 never publishes the ready token (it crashed, or stalled past
  // the transport's bound): the waiting rank must get a typed IoError
  // instead of hanging forever.  Bounded by timeout x retry attempts.
  comms::SocketWorld world(2, /*recv_timeout_ms=*/50);
  try {
    manifest_barrier(world.rank(1), 1);
    FAIL() << "barrier with a silent rank 0 must throw";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), IoErrorCode::kBarrierTimeout);
    EXPECT_NE(std::string(e.what()).find("never arrived"), std::string::npos);
  }
}

TEST_F(DistributedIoTest, ManifestBarrierFailsFastWhenRankZeroExited) {
  // A crashed rank 0 closes its stream: the waiting rank's verdict is
  // kPeerExited, surfaced through the same typed barrier error -- without
  // burning the full timeout.
  auto mesh = comms::make_socket_mesh(2);
  auto rank0 =
      std::make_unique<comms::SocketCommunicator>(2, 0, std::move(mesh[0]), 5000);
  comms::SocketCommunicator rank1(2, 1, std::move(mesh[1]), 5000);
  rank0.reset();  // rank 0 is gone before ever publishing
  try {
    manifest_barrier(rank1, 1);
    FAIL() << "barrier with an exited rank 0 must throw";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), IoErrorCode::kBarrierTimeout);
    EXPECT_NE(std::string(e.what()).find("peer exited"), std::string::npos);
  }
}

}  // namespace
}  // namespace svelat::io
