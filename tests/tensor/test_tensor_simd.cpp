// Tensor layer on SIMD innermost scalars: every lane must behave like an
// independent scalar tensor (the virtual-node property of paper Fig. 1).
#include <gtest/gtest.h>

#include <complex>

#include "simd/simd.h"
#include "sve/sve.h"
#include "tensor/tensor.h"

namespace svelat::tensor {
namespace {

using C = std::complex<double>;

template <typename P>
struct Fixture {
  using S = simd::SimdComplex<double, simd::kVLB512, P>;
  using Mat = iMatrix<S, 3>;
  using Vec = iVector<S, 3>;

  static C tv(int tag, int i, int j, unsigned lane) {
    return {0.5 * ((tag * 7 + i * 3 + j + static_cast<int>(lane) * 17) % 11) - 2.0,
            0.25 * ((tag * 13 + i * 5 + j * 2 + static_cast<int>(lane) * 23) % 9) - 1.0};
  }

  static Mat make_mat(int tag) {
    Mat m = Zero<Mat>();
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j)
        for (unsigned l = 0; l < S::Nsimd(); ++l) m(i, j).set_lane(l, tv(tag, i, j, l));
    return m;
  }

  static Vec make_vec(int tag) {
    Vec v = Zero<Vec>();
    for (int i = 0; i < 3; ++i)
      for (unsigned l = 0; l < S::Nsimd(); ++l) v(i).set_lane(l, tv(tag, i, 0, l));
    return v;
  }
};

template <typename P>
class TensorSimdTest : public ::testing::Test {
 protected:
  void SetUp() override { sve::set_vector_length(512); }
};

using Policies = ::testing::Types<simd::Generic, simd::SveFcmla, simd::SveReal>;
TYPED_TEST_SUITE(TensorSimdTest, Policies);

TYPED_TEST(TensorSimdTest, MatrixVectorPerLane) {
  using F = Fixture<TypeParam>;
  const auto m = F::make_mat(1);
  const auto v = F::make_vec(2);
  const auto r = m * v;
  for (unsigned l = 0; l < F::S::Nsimd(); ++l) {
    for (int i = 0; i < 3; ++i) {
      C expect{};
      for (int j = 0; j < 3; ++j) expect += m(i, j).lane(l) * v(j).lane(l);
      EXPECT_NEAR(std::abs(r(i).lane(l) - expect), 0.0, 1e-12) << l << ":" << i;
    }
  }
}

TYPED_TEST(TensorSimdTest, AdjMulPerLane) {
  using F = Fixture<TypeParam>;
  const auto m = F::make_mat(3);
  const auto v = F::make_vec(4);
  const auto r = adj_mul(m, v);
  for (unsigned l = 0; l < F::S::Nsimd(); ++l) {
    for (int i = 0; i < 3; ++i) {
      C expect{};
      for (int j = 0; j < 3; ++j) expect += std::conj(m(j, i).lane(l)) * v(j).lane(l);
      EXPECT_NEAR(std::abs(r(i).lane(l) - expect), 0.0, 1e-12) << l << ":" << i;
    }
  }
}

TYPED_TEST(TensorSimdTest, MatrixMatrixPerLane) {
  using F = Fixture<TypeParam>;
  const auto a = F::make_mat(5);
  const auto b = F::make_mat(6);
  const auto r = a * b;
  for (unsigned l = 0; l < F::S::Nsimd(); ++l) {
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        C expect{};
        for (int k = 0; k < 3; ++k) expect += a(i, k).lane(l) * b(k, j).lane(l);
        EXPECT_NEAR(std::abs(r(i, j).lane(l) - expect), 0.0, 1e-12);
      }
  }
}

TYPED_TEST(TensorSimdTest, TraceAndInnerProductReduceOverLanes) {
  using F = Fixture<TypeParam>;
  using S = typename F::S;
  const auto a = F::make_mat(7);
  const S tr = trace(a);
  for (unsigned l = 0; l < S::Nsimd(); ++l) {
    C expect{};
    for (int i = 0; i < 3; ++i) expect += a(i, i).lane(l);
    EXPECT_NEAR(std::abs(tr.lane(l) - expect), 0.0, 1e-12) << l;
  }
  // innerProduct then reduce over lanes == scalar double sum.
  const auto v = F::make_vec(8);
  const S ip = innerProduct(v, v);
  const C total = reduce(ip);
  double expect = 0;
  for (unsigned l = 0; l < S::Nsimd(); ++l)
    for (int i = 0; i < 3; ++i) expect += std::norm(v(i).lane(l));
  EXPECT_NEAR(total.real(), expect, 1e-11);
  EXPECT_NEAR(total.imag(), 0.0, 1e-11);
}

TYPED_TEST(TensorSimdTest, GaugeLikeIdentity) {
  // (a * adj(a)) applied lane-wise stays hermitian per lane.
  using F = Fixture<TypeParam>;
  const auto a = F::make_mat(9);
  const auto h = a * adj(a);
  for (unsigned l = 0; l < F::S::Nsimd(); ++l)
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        const C hij = h(i, j).lane(l);
        const C hji = h(j, i).lane(l);
        EXPECT_NEAR(std::abs(hij - std::conj(hji)), 0.0, 1e-11);
      }
}

}  // namespace
}  // namespace svelat::tensor
