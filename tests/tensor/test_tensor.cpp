// Tensor-layer algebra tests with std::complex (reference) innermost type.
#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <complex>

namespace svelat::tensor {
namespace {

using C = std::complex<double>;
using CMat3 = iMatrix<C, 3>;
using CVec3 = iVector<C, 3>;

C tv(int tag, int i, int j = 0) {
  return {0.5 * ((tag * 7 + i * 3 + j) % 11) - 2.0, 0.25 * ((tag * 13 + i * 5 + j * 2) % 9) - 1.0};
}

CMat3 make_mat(int tag) {
  CMat3 m;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) m(i, j) = tv(tag, i, j);
  return m;
}

CVec3 make_vec(int tag) {
  CVec3 v;
  for (int i = 0; i < 3; ++i) v(i) = tv(tag, i);
  return v;
}

TEST(Tensor, ZeroInitialization) {
  const auto m = Zero<CMat3>();
  const auto v = Zero<CVec3>();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(v(i), C{});
    for (int j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), C{});
  }
}

TEST(Tensor, VectorAddSub) {
  const auto a = make_vec(1), b = make_vec(2);
  const auto s = a + b, d = a - b;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(s(i), a(i) + b(i));
    EXPECT_EQ(d(i), a(i) - b(i));
  }
  EXPECT_EQ(s - b, a);
}

TEST(Tensor, MatrixVectorProduct) {
  const auto m = make_mat(3);
  const auto v = make_vec(4);
  const auto r = m * v;
  for (int i = 0; i < 3; ++i) {
    C expect{};
    for (int j = 0; j < 3; ++j) expect += m(i, j) * v(j);
    EXPECT_NEAR(std::abs(r(i) - expect), 0.0, 1e-13) << i;
  }
}

TEST(Tensor, MatrixMatrixProduct) {
  const auto a = make_mat(5), b = make_mat(6);
  const auto r = a * b;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      C expect{};
      for (int k = 0; k < 3; ++k) expect += a(i, k) * b(k, j);
      EXPECT_NEAR(std::abs(r(i, j) - expect), 0.0, 1e-13);
    }
}

TEST(Tensor, MatrixProductAssociative) {
  const auto a = make_mat(7), b = make_mat(8), c = make_mat(9);
  const auto lhs = (a * b) * c;
  const auto rhs = a * (b * c);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(std::abs(lhs(i, j) - rhs(i, j)), 0.0, 1e-12);
}

TEST(Tensor, AdjIsConjugateTranspose) {
  const auto m = make_mat(10);
  const auto a = adj(m);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_EQ(a(i, j), std::conj(m(j, i)));
  // Involution.
  EXPECT_EQ(adj(a), m);
}

TEST(Tensor, AdjOfProductReverses) {
  const auto a = make_mat(11), b = make_mat(12);
  const auto lhs = adj(a * b);
  const auto rhs = adj(b) * adj(a);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(std::abs(lhs(i, j) - rhs(i, j)), 0.0, 1e-13);
}

TEST(Tensor, AdjMulMatchesExplicitAdj) {
  const auto m = make_mat(13);
  const auto v = make_vec(14);
  const auto fused = adj_mul(m, v);
  const auto expect = adj(m) * v;
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(std::abs(fused(i) - expect(i)), 0.0, 1e-13);
}

TEST(Tensor, TransposeAndTrace) {
  const auto m = make_mat(15);
  const auto t = transpose(m);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_EQ(t(i, j), m(j, i));
  C tr{};
  for (int i = 0; i < 3; ++i) tr += m(i, i);
  EXPECT_EQ(trace(m), tr);
  // trace(ab) == trace(ba)
  const auto b = make_mat(16);
  EXPECT_NEAR(std::abs(trace(m * b) - trace(b * m)), 0.0, 1e-12);
}

TEST(Tensor, TimesIRecursion) {
  const auto v = make_vec(17);
  const auto iv = timesI(v);
  const auto miv = timesMinusI(v);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(iv(i), C(0, 1) * v(i));
    EXPECT_EQ(miv(i), C(0, -1) * v(i));
  }
  EXPECT_EQ(timesI(timesI(v)), -v);
}

TEST(Tensor, ConjugateElementwise) {
  const auto m = make_mat(18);
  const auto c = conjugate(m);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_EQ(c(i, j), std::conj(m(i, j)));
}

TEST(Tensor, ScalarCoefficient) {
  const auto v = make_vec(19);
  const C s(2.0, -1.0);
  const auto r = s * v;
  for (int i = 0; i < 3; ++i) EXPECT_EQ(r(i), s * v(i));
  const auto m = make_mat(20);
  const auto rm = s * m;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_EQ(rm(i, j), s * m(i, j));
}

TEST(Tensor, InnerProductVector) {
  const auto a = make_vec(21), b = make_vec(22);
  C expect{};
  for (int i = 0; i < 3; ++i) expect += std::conj(a(i)) * b(i);
  EXPECT_NEAR(std::abs(innerProduct(a, b) - expect), 0.0, 1e-13);
  // Positive-definite on the diagonal.
  EXPECT_GT(innerProduct(a, a).real(), 0.0);
  EXPECT_NEAR(innerProduct(a, a).imag(), 0.0, 1e-13);
}

TEST(Tensor, InnerProductMatrixIsFrobenius) {
  const auto a = make_mat(23), b = make_mat(24);
  C expect{};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) expect += std::conj(a(i, j)) * b(i, j);
  EXPECT_NEAR(std::abs(innerProduct(a, b) - expect), 0.0, 1e-13);
}

TEST(Tensor, NestedSpinColourStructure) {
  // Fermion-like nesting: 4 spins x 3 colours.
  using Fermion = iVector<iVector<C, 3>, 4>;
  Fermion f = Zero<Fermion>();
  for (int s = 0; s < 4; ++s)
    for (int c = 0; c < 3; ++c) f(s)(c) = tv(25, s, c);
  const Fermion g = timesI(f);
  for (int s = 0; s < 4; ++s)
    for (int c = 0; c < 3; ++c) EXPECT_EQ(g(s)(c), C(0, 1) * f(s)(c));
  const auto n2 = innerProduct(f, f);
  double expect = 0;
  for (int s = 0; s < 4; ++s)
    for (int c = 0; c < 3; ++c) expect += std::norm(f(s)(c));
  EXPECT_NEAR(n2.real(), expect, 1e-12);
}

TEST(Tensor, MacAccumulatesIntoNested) {
  using ColourVec = iVector<C, 3>;
  ColourVec acc = Zero<ColourVec>();
  // mac on the scalar level through matrix*vector: covered in products; here
  // check direct accumulation loop equivalence.
  const auto m = make_mat(26);
  const auto v = make_vec(27);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) mac(acc(i), m(i, j), v(j));
  const auto expect = m * v;
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(std::abs(acc(i) - expect(i)), 0.0, 1e-13);
}

}  // namespace
}  // namespace svelat::tensor
