// Shared helpers for SIMD-layer tests: typed test lists covering
// backend x element type x vector length.
#pragma once

#include <gtest/gtest.h>

#include <complex>

#include "simd/simd.h"
#include "sve/sve.h"

namespace svelat::simd::testing {

/// Typed-test case: one (T, VLB, Policy) combination.
template <typename T, std::size_t VLB, typename P>
struct Case {
  using scalar = T;
  using policy = P;
  static constexpr std::size_t vlb = VLB;
  using simd_type = SimdComplex<T, VLB, P>;
};

using AllCases = ::testing::Types<
    Case<double, kVLB128, Generic>, Case<double, kVLB256, Generic>,
    Case<double, kVLB512, Generic>, Case<double, kVLB128, SveFcmla>,
    Case<double, kVLB256, SveFcmla>, Case<double, kVLB512, SveFcmla>,
    Case<double, kVLB128, SveReal>, Case<double, kVLB256, SveReal>,
    Case<double, kVLB512, SveReal>, Case<float, kVLB128, SveFcmla>,
    Case<float, kVLB256, SveFcmla>, Case<float, kVLB512, SveFcmla>,
    Case<float, kVLB512, SveReal>, Case<float, kVLB512, Generic>>;

/// Fixture that pins the simulator VL to the case's compile-time VLB.
template <typename C>
class SimdCaseTest : public ::testing::Test {
 protected:
  void SetUp() override { sve::set_vector_length(8 * C::vlb); }
  void TearDown() override { sve::set_vector_length(512); }
};

/// Deterministic complex test value for (tag, lane).
template <typename T>
std::complex<T> tv(int tag, unsigned lane) {
  return {static_cast<T>(((tag * 37 + static_cast<int>(lane) * 11) % 19) - 9) / T(4),
          static_cast<T>(((tag * 53 + static_cast<int>(lane) * 29) % 17) - 8) / T(8)};
}

/// Build a SimdComplex with distinct per-lane values.
template <typename S>
S make_simd(int tag) {
  S s = S::zero();
  for (unsigned i = 0; i < S::Nsimd(); ++i) s.set_lane(i, tv<typename S::real_type>(tag, i));
  return s;
}

}  // namespace svelat::simd::testing
