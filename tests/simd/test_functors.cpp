// Functor correctness across backends, element types and vector lengths:
// every complex operation must agree lane-by-lane with std::complex.
#include <gtest/gtest.h>

#include <complex>

#include "simd/simd.h"
#include "simd_test_util.h"

namespace svelat::simd {
namespace {

using svelat::simd::testing::make_simd;
using svelat::simd::testing::SimdCaseTest;
using svelat::simd::testing::tv;

template <typename C>
class FunctorTest : public SimdCaseTest<C> {};

TYPED_TEST_SUITE(FunctorTest, svelat::simd::testing::AllCases);

// Tolerance: float lanes accumulate a couple of rounding steps.
template <typename T>
constexpr T tol() {
  return std::is_same_v<T, double> ? T(1e-13) : T(1e-5);
}

TYPED_TEST(FunctorTest, SplatBroadcasts) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  const S s(T(1.5), T(-2.25));
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    EXPECT_EQ(s.lane(i), (std::complex<T>{T(1.5), T(-2.25)})) << i;
  }
}

TYPED_TEST(FunctorTest, ZeroIsZero) {
  using S = typename TypeParam::simd_type;
  const S z = S::zero();
  for (unsigned i = 0; i < S::Nsimd(); ++i) EXPECT_EQ(z.lane(i), (std::complex<typename TypeParam::scalar>{})) << i;
}

TYPED_TEST(FunctorTest, AddSubNegLanewise) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  const S a = make_simd<S>(1), b = make_simd<S>(2);
  const S sum = a + b, dif = a - b, neg = -a;
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    EXPECT_EQ(sum.lane(i), tv<T>(1, i) + tv<T>(2, i)) << i;
    EXPECT_EQ(dif.lane(i), tv<T>(1, i) - tv<T>(2, i)) << i;
    EXPECT_EQ(neg.lane(i), -tv<T>(1, i)) << i;
  }
}

TYPED_TEST(FunctorTest, MultComplexMatchesStd) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  const S a = make_simd<S>(3), b = make_simd<S>(4);
  const S prod = a * b;
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    const std::complex<T> expect = tv<T>(3, i) * tv<T>(4, i);
    EXPECT_NEAR(prod.lane(i).real(), expect.real(), tol<T>()) << i;
    EXPECT_NEAR(prod.lane(i).imag(), expect.imag(), tol<T>()) << i;
  }
}

TYPED_TEST(FunctorTest, MacAccumulates) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  S acc = make_simd<S>(5);
  const S x = make_simd<S>(6), y = make_simd<S>(7);
  acc.mac(x, y);
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    const std::complex<T> expect = tv<T>(5, i) + tv<T>(6, i) * tv<T>(7, i);
    EXPECT_NEAR(acc.lane(i).real(), expect.real(), tol<T>()) << i;
    EXPECT_NEAR(acc.lane(i).imag(), expect.imag(), tol<T>()) << i;
  }
}

TYPED_TEST(FunctorTest, ConjMultMatchesStd) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  const S a = make_simd<S>(8), b = make_simd<S>(9);
  const S prod = mult_conj(a, b);
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    const std::complex<T> expect = std::conj(tv<T>(8, i)) * tv<T>(9, i);
    EXPECT_NEAR(prod.lane(i).real(), expect.real(), tol<T>()) << i;
    EXPECT_NEAR(prod.lane(i).imag(), expect.imag(), tol<T>()) << i;
  }
}

TYPED_TEST(FunctorTest, MacConjAccumulates) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  S acc = make_simd<S>(10);
  const S x = make_simd<S>(11), y = make_simd<S>(12);
  acc.mac_conj(x, y);
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    const std::complex<T> expect = tv<T>(10, i) + std::conj(tv<T>(11, i)) * tv<T>(12, i);
    EXPECT_NEAR(acc.lane(i).real(), expect.real(), tol<T>()) << i;
    EXPECT_NEAR(acc.lane(i).imag(), expect.imag(), tol<T>()) << i;
  }
}

TYPED_TEST(FunctorTest, TimesIRotates) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  const S a = make_simd<S>(13);
  const S pi = timesI(a);
  const S mi = timesMinusI(a);
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    const std::complex<T> z = tv<T>(13, i);
    EXPECT_EQ(pi.lane(i), (std::complex<T>{-z.imag(), z.real()})) << i;
    EXPECT_EQ(mi.lane(i), (std::complex<T>{z.imag(), -z.real()})) << i;
  }
}

TYPED_TEST(FunctorTest, TimesITwiceIsNegation) {
  using S = typename TypeParam::simd_type;
  const S a = make_simd<S>(14);
  EXPECT_EQ(timesI(timesI(a)), -a);
  EXPECT_EQ(timesMinusI(timesI(a)), a);
}

TYPED_TEST(FunctorTest, ConjugateInvolution) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  const S a = make_simd<S>(15);
  const S c = conjugate(a);
  for (unsigned i = 0; i < S::Nsimd(); ++i)
    EXPECT_EQ(c.lane(i), std::conj(tv<T>(15, i))) << i;
  EXPECT_EQ(conjugate(c), a);
}

TYPED_TEST(FunctorTest, RealScale) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  const S a = make_simd<S>(16);
  const S s = T(2) * a;
  for (unsigned i = 0; i < S::Nsimd(); ++i) EXPECT_EQ(s.lane(i), T(2) * tv<T>(16, i)) << i;
}

TYPED_TEST(FunctorTest, ReduceSumsLanes) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  const S a = make_simd<S>(17);
  std::complex<T> expect{};
  for (unsigned i = 0; i < S::Nsimd(); ++i) expect += tv<T>(17, i);
  const std::complex<T> got = reduce(a);
  EXPECT_NEAR(got.real(), expect.real(), tol<T>());
  EXPECT_NEAR(got.imag(), expect.imag(), tol<T>());
}

TYPED_TEST(FunctorTest, PermuteBlocksExchanges) {
  using S = typename TypeParam::simd_type;
  const S a = make_simd<S>(18);
  for (unsigned d = 1; d < S::Nsimd(); d *= 2) {
    const S p = permute_blocks(a, d);
    for (unsigned i = 0; i < S::Nsimd(); ++i) EXPECT_EQ(p.lane(i), a.lane(i ^ d)) << d << ":" << i;
    // Involution: permuting twice restores the original.
    EXPECT_EQ(permute_blocks(p, d), a) << d;
  }
}

TYPED_TEST(FunctorTest, DistributivityProperty) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  const S a = make_simd<S>(19), b = make_simd<S>(20), c = make_simd<S>(21);
  const S lhs = a * (b + c);
  const S rhs = a * b + a * c;
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    EXPECT_NEAR(lhs.lane(i).real(), rhs.lane(i).real(), tol<T>()) << i;
    EXPECT_NEAR(lhs.lane(i).imag(), rhs.lane(i).imag(), tol<T>()) << i;
  }
}

TYPED_TEST(FunctorTest, ConjDistributesOverProduct) {
  using S = typename TypeParam::simd_type;
  using T = typename TypeParam::scalar;
  const S a = make_simd<S>(22), b = make_simd<S>(23);
  const S lhs = conjugate(a * b);
  const S rhs = conjugate(a) * conjugate(b);
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    EXPECT_NEAR(lhs.lane(i).real(), rhs.lane(i).real(), tol<T>()) << i;
    EXPECT_NEAR(lhs.lane(i).imag(), rhs.lane(i).imag(), tol<T>()) << i;
  }
}

}  // namespace
}  // namespace svelat::simd
