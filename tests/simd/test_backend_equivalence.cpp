// Cross-backend equivalence: the three implementations must produce
// bit-identical results for every operation (they evaluate the same
// real-arithmetic expressions, only through different instruction
// sequences), which is what makes the Sec. V-D cross-VL verification
// meaningful.
#include <gtest/gtest.h>

#include <complex>

#include "simd/simd.h"
#include "simd_test_util.h"
#include "sve/sve.h"

namespace svelat::simd {
namespace {

using svelat::simd::testing::tv;

template <std::size_t VLB>
class BackendEquivalence : public ::testing::Test {
 protected:
  void SetUp() override { sve::set_vector_length(8 * VLB); }
  void TearDown() override { sve::set_vector_length(512); }

  template <typename P>
  static SimdComplex<double, VLB, P> make(int tag) {
    auto s = SimdComplex<double, VLB, P>::zero();
    for (unsigned i = 0; i < s.Nsimd(); ++i) s.set_lane(i, tv<double>(tag, i));
    return s;
  }

  template <typename PA, typename PB, typename FnA, typename FnB>
  static void expect_same(FnA fa, FnB fb) {
    const auto ra = fa();
    const auto rb = fb();
    for (unsigned i = 0; i < ra.Nsimd(); ++i) {
      EXPECT_EQ(ra.lane(i).real(), rb.lane(i).real()) << i;
      EXPECT_EQ(ra.lane(i).imag(), rb.lane(i).imag()) << i;
    }
  }
};

using VLBs = ::testing::Types<std::integral_constant<std::size_t, kVLB128>,
                              std::integral_constant<std::size_t, kVLB256>,
                              std::integral_constant<std::size_t, kVLB512>>;

template <typename VLBc>
class BackendEquivalenceTest : public BackendEquivalence<VLBc::value> {};

TYPED_TEST_SUITE(BackendEquivalenceTest, VLBs);

#define SVELAT_EQUIV_CHECK(EXPR_A, EXPR_B)                              \
  do {                                                                  \
    for (unsigned i = 0; i < (EXPR_A).Nsimd(); ++i) {                   \
      EXPECT_EQ((EXPR_A).lane(i).real(), (EXPR_B).lane(i).real()) << i; \
      EXPECT_EQ((EXPR_A).lane(i).imag(), (EXPR_B).lane(i).imag()) << i; \
    }                                                                   \
  } while (0)

TYPED_TEST(BackendEquivalenceTest, MultComplexIdenticalAcrossBackends) {
  constexpr std::size_t VLB = TypeParam::value;
  using G = SimdComplex<double, VLB, Generic>;
  using F = SimdComplex<double, VLB, SveFcmla>;
  using R = SimdComplex<double, VLB, SveReal>;
  const auto g = this->template make<Generic>(1) * this->template make<Generic>(2);
  const auto f = this->template make<SveFcmla>(1) * this->template make<SveFcmla>(2);
  const auto r = this->template make<SveReal>(1) * this->template make<SveReal>(2);
  static_assert(G::Nsimd() == F::Nsimd() && F::Nsimd() == R::Nsimd());
  for (unsigned i = 0; i < G::Nsimd(); ++i) {
    EXPECT_EQ(g.lane(i), f.lane(i)) << i;
    EXPECT_EQ(g.lane(i), r.lane(i)) << i;
  }
}

TYPED_TEST(BackendEquivalenceTest, MacIdenticalAcrossBackends) {
  auto g = this->template make<Generic>(3);
  auto f = this->template make<SveFcmla>(3);
  auto r = this->template make<SveReal>(3);
  g.mac(this->template make<Generic>(4), this->template make<Generic>(5));
  f.mac(this->template make<SveFcmla>(4), this->template make<SveFcmla>(5));
  r.mac(this->template make<SveReal>(4), this->template make<SveReal>(5));
  for (unsigned i = 0; i < g.Nsimd(); ++i) {
    EXPECT_EQ(g.lane(i), f.lane(i)) << i;
    EXPECT_EQ(g.lane(i), r.lane(i)) << i;
  }
}

TYPED_TEST(BackendEquivalenceTest, ConjTimesIPermuteIdentical) {
  const auto g = this->template make<Generic>(6);
  const auto f = this->template make<SveFcmla>(6);
  const auto r = this->template make<SveReal>(6);
  for (unsigned i = 0; i < g.Nsimd(); ++i) {
    EXPECT_EQ(conjugate(g).lane(i), conjugate(f).lane(i));
    EXPECT_EQ(conjugate(g).lane(i), conjugate(r).lane(i));
    EXPECT_EQ(timesI(g).lane(i), timesI(f).lane(i));
    EXPECT_EQ(timesI(g).lane(i), timesI(r).lane(i));
    EXPECT_EQ(timesMinusI(g).lane(i), timesMinusI(r).lane(i));
  }
  for (unsigned d = 1; d < g.Nsimd(); d *= 2) {
    for (unsigned i = 0; i < g.Nsimd(); ++i) {
      EXPECT_EQ(permute_blocks(g, d).lane(i), permute_blocks(f, d).lane(i)) << d;
      EXPECT_EQ(permute_blocks(g, d).lane(i), permute_blocks(r, d).lane(i)) << d;
    }
  }
}

TYPED_TEST(BackendEquivalenceTest, InstructionMixFcmlaVsReal) {
  // The Sec. V-E ablation at functor granularity: the real-arithmetic
  // alternative spends strictly more instructions per MultComplex than the
  // FCMLA path (permutes + separate mul/fma chains vs two FCMLA).
  const auto f1 = this->template make<SveFcmla>(7);
  const auto f2 = this->template make<SveFcmla>(8);
  const auto r1 = this->template make<SveReal>(7);
  const auto r2 = this->template make<SveReal>(8);

  sve::CounterScope fc;
  const auto fr = f1 * f2;
  const auto fdelta = fc.delta();

  sve::CounterScope rc;
  const auto rr = r1 * r2;
  const auto rdelta = rc.delta();

  EXPECT_EQ(fdelta[sve::InsnClass::kFCmla], 2u);
  EXPECT_EQ(rdelta[sve::InsnClass::kFCmla], 0u);
  EXPECT_GT(rdelta[sve::InsnClass::kPermute], 0u);
  EXPECT_GT(rdelta.total(), fdelta.total());
  // And both compute the same thing.
  for (unsigned i = 0; i < fr.Nsimd(); ++i) EXPECT_EQ(fr.lane(i), rr.lane(i));
}

#undef SVELAT_EQUIV_CHECK

}  // namespace
}  // namespace svelat::simd
