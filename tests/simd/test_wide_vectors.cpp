// Wide-vector (1024/2048-bit) SIMD layer tests: the paper's Sec. V-B
// future-work item ("wider vectors are possible but specialization of some
// of the lower-level functionality is necessary").
#include <gtest/gtest.h>

#include <complex>

#include "simd/simd.h"
#include "sve/sve.h"

namespace svelat::simd {
namespace {

using C = std::complex<double>;

template <typename S>
S make_simd(int tag) {
  S s = S::zero();
  for (unsigned i = 0; i < S::Nsimd(); ++i)
    s.set_lane(i, C(0.25 * ((tag * 37 + static_cast<int>(i) * 11) % 19) - 2.0,
                    0.125 * ((tag * 53 + static_cast<int>(i) * 29) % 17) - 1.0));
  return s;
}

template <typename S>
void run_wide_checks() {
  sve::VLGuard vl(8 * S::vlb);
  const S a = make_simd<S>(1), b = make_simd<S>(2);

  const S prod = a * b;
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    const C expect = a.lane(i) * b.lane(i);
    EXPECT_NEAR(std::abs(prod.lane(i) - expect), 0.0, 1e-12) << i;
  }

  const S cm = mult_conj(a, b);
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    const C expect = std::conj(a.lane(i)) * b.lane(i);
    EXPECT_NEAR(std::abs(cm.lane(i) - expect), 0.0, 1e-12) << i;
  }

  EXPECT_EQ(timesI(timesI(a)), -a);
  EXPECT_EQ(conjugate(conjugate(a)), a);

  // All permute distances, including the wide ones needing the extended
  // index tables (the "specialization" of Sec. V-B).
  for (unsigned d = 1; d < S::Nsimd(); d *= 2) {
    const S p = permute_blocks(a, d);
    for (unsigned i = 0; i < S::Nsimd(); ++i) EXPECT_EQ(p.lane(i), a.lane(i ^ d)) << d << ":" << i;
  }

  C expect_sum{};
  for (unsigned i = 0; i < S::Nsimd(); ++i) expect_sum += a.lane(i);
  EXPECT_NEAR(std::abs(reduce(a) - expect_sum), 0.0, 1e-11);
}

TEST(WideVectors, Fcmla1024Double) {
  using S = SimdComplex<double, kVLB1024, SveFcmla>;
  static_assert(S::Nsimd() == 8);
  run_wide_checks<S>();
}

TEST(WideVectors, Fcmla2048Double) {
  using S = SimdComplex<double, kVLB2048, SveFcmla>;
  static_assert(S::Nsimd() == 16);
  run_wide_checks<S>();
}

TEST(WideVectors, Real2048Double) {
  using S = SimdComplex<double, kVLB2048, SveReal>;
  run_wide_checks<S>();
}

TEST(WideVectors, Generic2048Double) {
  using S = SimdComplex<double, kVLB2048, Generic>;
  run_wide_checks<S>();
}

TEST(WideVectors, Fcmla2048Float) {
  using S = SimdComplex<float, kVLB2048, SveFcmla>;
  static_assert(S::Nsimd() == 32);
  sve::VLGuard vl(2048);
  const S a = S(1.5f, -0.5f);
  const S b = S(2.0f, 0.25f);
  const S p = a * b;
  const std::complex<float> expect =
      std::complex<float>(1.5f, -0.5f) * std::complex<float>(2.0f, 0.25f);
  for (unsigned i = 0; i < S::Nsimd(); ++i) {
    EXPECT_FLOAT_EQ(p.lane(i).real(), expect.real()) << i;
    EXPECT_FLOAT_EQ(p.lane(i).imag(), expect.imag()) << i;
  }
}

TEST(WideVectors, BackendsBitIdenticalAt2048) {
  using F = SimdComplex<double, kVLB2048, SveFcmla>;
  using R = SimdComplex<double, kVLB2048, SveReal>;
  using G = SimdComplex<double, kVLB2048, Generic>;
  sve::VLGuard vl(2048);
  const auto f = make_simd<F>(5) * make_simd<F>(6);
  const auto r = make_simd<R>(5) * make_simd<R>(6);
  const auto g = make_simd<G>(5) * make_simd<G>(6);
  for (unsigned i = 0; i < F::Nsimd(); ++i) {
    EXPECT_EQ(f.lane(i), r.lane(i)) << i;
    EXPECT_EQ(f.lane(i), g.lane(i)) << i;
  }
}

}  // namespace
}  // namespace svelat::simd
