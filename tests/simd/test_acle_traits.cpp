// acle<T> traits and the vector-length contract (paper Sec. V-A/V-B).
#include <gtest/gtest.h>

#include "simd/simd.h"
#include "sve/sve.h"

namespace svelat::simd {
namespace {

TEST(AcleTraits, LaneCounts) {
  EXPECT_EQ((acle<double, kVLB128>::lanes), 2u);
  EXPECT_EQ((acle<double, kVLB256>::lanes), 4u);
  EXPECT_EQ((acle<double, kVLB512>::lanes), 8u);
  EXPECT_EQ((acle<float, kVLB512>::lanes), 16u);
  EXPECT_EQ((acle<half, kVLB512>::lanes), 32u);
}

TEST(AcleTraits, IndexTypesMatchWidth) {
  static_assert(std::is_same_v<acle<double, kVLB512>::index_t, std::uint64_t>);
  static_assert(std::is_same_v<acle<float, kVLB512>::index_t, std::uint32_t>);
  static_assert(std::is_same_v<acle<half, kVLB512>::index_t, std::uint16_t>);
  SUCCEED();
}

TEST(AcleTraits, VecIsOrdinaryAlignedArray) {
  // The core workaround of the paper: the SIMD storage must be an ordinary
  // (sized!) type usable as class member data, unlike ACLE vectors.
  static_assert(sizeof(vec<double, kVLB512>) == kVLB512);
  static_assert(alignof(vec<double, kVLB512>) == kVLB512);
  static_assert(sizeof(vec<float, kVLB128>) == kVLB128);
  static_assert(vec<double, kVLB256>::size == 4);
  SUCCEED();
}

TEST(AcleTraits, Pg1MatchingHardware) {
  sve::VLGuard vl(512);
  const sve::svbool_t pg = acle<double, kVLB512>::pg1();
  for (unsigned i = 0; i < 8; ++i) EXPECT_TRUE(sve::detail::pred_elem<double>(pg, i));
}

TEST(AcleTraits, Pg1AbortsOnMismatchedHardware) {
  // The paper warns that fixed-size binaries "will only be operating
  // correctly on matching SVE hardware" (Sec. IV-D).  Our port fails fast.
  sve::VLGuard vl(1024);
  EXPECT_DEATH((void)(acle<double, kVLB512>::pg1()), "vector length");
}

TEST(AcleTraits, PgVlaSafeOnWiderHardware) {
  // The WHILELT-based predicate covers exactly the vec<T> lanes even on
  // wider hardware -- the VLA escape hatch the paper's port deliberately
  // does not take (Sec. V-B).
  sve::VLGuard vl(1024);
  const sve::svbool_t pg = acle<double, kVLB512>::pg1_vla();
  for (unsigned i = 0; i < 16; ++i)
    EXPECT_EQ(sve::detail::pred_elem<double>(pg, i), i < 8u) << i;
}

TEST(AcleTraits, EvenOddPredicates) {
  sve::VLGuard vl(256);
  const sve::svbool_t even = acle<double, kVLB256>::pg_even();
  const sve::svbool_t odd = acle<double, kVLB256>::pg_odd();
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(sve::detail::pred_elem<double>(even, i), i % 2 == 0) << i;
    EXPECT_EQ(sve::detail::pred_elem<double>(odd, i), i % 2 == 1) << i;
  }
}

TEST(AcleTraits, SwapIndexSwapsAdjacent) {
  sve::VLGuard vl(512);
  const auto idx = acle<double, kVLB512>::swap_index();
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(idx.lane[i], i ^ 1u) << i;
}

TEST(AcleTraits, XorIndexTables) {
  sve::VLGuard vl(512);
  for (std::size_t d : {1u, 2u, 4u}) {
    const auto idx = acle<double, kVLB512>::xor_index(d);
    for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(idx.lane[i], i ^ d) << d << ":" << i;
  }
}

}  // namespace
}  // namespace svelat::simd

// The mismatch demonstration needs the Sec. IV-D kernel from core/kernels.h.
#include "core/kernels.h"

#include <vector>

namespace svelat::simd {
namespace {

TEST(VLMismatch, FixedKernelProcessesOnlyHardwareVector) {
  // Intent: process 4 complex numbers (one 512-bit vector's worth).
  std::vector<kernels::cplx> x(4, {1.0, 1.0}), y(4, {2.0, 0.0}), z(4, {0.0, 0.0});

  {
    sve::VLGuard vl(512);  // matching hardware: all 4 results written
    kernels::mult_cplx_acle_fixed(reinterpret_cast<const double*>(x.data()),
                                  reinterpret_cast<const double*>(y.data()),
                                  reinterpret_cast<double*>(z.data()));
    for (int i = 0; i < 4; ++i) EXPECT_EQ(z[static_cast<std::size_t>(i)], (kernels::cplx{2.0, 2.0})) << i;
  }
  {
    sve::VLGuard vl(256);  // narrower hardware: only 2 of 4 results written
    std::fill(z.begin(), z.end(), kernels::cplx{0.0, 0.0});
    kernels::mult_cplx_acle_fixed(reinterpret_cast<const double*>(x.data()),
                                  reinterpret_cast<const double*>(y.data()),
                                  reinterpret_cast<double*>(z.data()));
    EXPECT_EQ(z[0], (kernels::cplx{2.0, 2.0}));
    EXPECT_EQ(z[1], (kernels::cplx{2.0, 2.0}));
    EXPECT_EQ(z[2], (kernels::cplx{0.0, 0.0}));  // silently unprocessed
    EXPECT_EQ(z[3], (kernels::cplx{0.0, 0.0}));
  }
}

}  // namespace
}  // namespace svelat::simd
