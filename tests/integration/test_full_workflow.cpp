// Integration test: the full production pipeline across every layer.
//
//   Metropolis thermalization -> gauge observables -> Wilson operator ->
//   WilsonSolver facade (every algorithm) -> propagator physics -- all on
//   the SVE simulator, with cross-layout reproducibility checks along the
//   way.
#include <gtest/gtest.h>

#include "core/svelat.h"
#include "qcd/metropolis.h"
#include "qcd/observables.h"
#include "qcd/propagator.h"

namespace svelat {
namespace {

using Sd = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Sf = simd::SimdComplex<float, simd::kVLB512, simd::SveFcmla>;
using Fermion = qcd::LatticeFermion<Sd>;

class FullWorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 4},
        lattice::GridCartesian::default_simd_layout(Sd::Nsimd()));
    gauge_ = std::make_unique<qcd::GaugeField<Sd>>(grid_.get());
    qcd::random_gauge(SiteRNG(2018), *gauge_);

    // Thermalize briefly at moderate coupling.
    qcd::MetropolisParams params;
    params.beta = 6.0;
    params.epsilon = 0.24;
    params.seed = 99;
    for (int sweep = 0; sweep < 3; ++sweep) qcd::metropolis_sweep(*gauge_, params, sweep);
  }

  std::unique_ptr<lattice::GridCartesian> grid_;
  std::unique_ptr<qcd::GaugeField<Sd>> gauge_;
};

TEST_F(FullWorkflowTest, ThermalizedConfigurationIsOrderedAndUnitary) {
  const double plaq = qcd::average_plaquette(*gauge_);
  EXPECT_GT(plaq, 0.15);  // moved away from strong coupling
  EXPECT_LT(plaq, 1.0);
  // Links still on the group manifold after the MC updates.
  for (int mu = 0; mu < lattice::Nd; ++mu) {
    const auto s = gauge_->U[mu].peek({1, 2, 3, 0});
    qcd::ScalarColourMatrix m;
    for (int i = 0; i < qcd::Nc; ++i)
      for (int j = 0; j < qcd::Nc; ++j) m(i, j) = s(i, j);
    EXPECT_LT(qcd::unitarity_error(m), 1e-12);
  }
  // W(1,1) equals the plaquette on the same configuration.
  EXPECT_NEAR(qcd::average_wilson_loop(*gauge_, 1, 1), plaq, 1e-12);
}

TEST_F(FullWorkflowTest, AllSolversAgreeOnThermalizedBackground) {
  // Every facade algorithm on the same thermalized background; the inner
  // scalar of the mixed solve (Sf) is derived by the facade itself.
  static_assert(std::is_same_v<solver::WilsonSolver<Sd>::InnerScalar, Sf>);
  const double mass = 0.25, tol = 1e-9;
  Fermion b(grid_.get());
  gaussian_fill(SiteRNG(5), b);

  using solver::Algorithm;
  using solver::Preconditioner;
  using solver::SolverParams;
  const auto base = SolverParams{}.with_tolerance(tol).with_max_iterations(800);
  solver::WilsonSolver<Sd> cg(*gauge_, mass,
                              SolverParams{base}.with_preconditioner(
                                  Preconditioner::kNone));
  solver::WilsonSolver<Sd> schur(*gauge_, mass, base);
  solver::WilsonSolver<Sd> bicg(*gauge_, mass,
                                SolverParams{base}
                                    .with_algorithm(Algorithm::kBiCGSTAB)
                                    .with_preconditioner(Preconditioner::kNone));
  solver::WilsonSolver<Sd> mixed(*gauge_, mass,
                                 SolverParams{base}
                                     .with_algorithm(Algorithm::kMixedCG)
                                     .with_max_restarts(25));

  Fermion x_cg(grid_.get()), x_schur(grid_.get()), x_bicg(grid_.get()),
      x_mixed(grid_.get());
  x_cg.set_zero();
  x_bicg.set_zero();
  x_mixed.set_zero();

  const auto s_cg = cg.solve(b, x_cg);
  const auto s_schur = schur.solve(b, x_schur);
  const auto s_bicg = bicg.solve(b, x_bicg);
  const auto s_mixed = mixed.solve(b, x_mixed);
  ASSERT_TRUE(s_cg.converged);
  ASSERT_TRUE(s_schur.converged);
  ASSERT_TRUE(s_bicg.converged);
  ASSERT_TRUE(s_mixed.converged);

  EXPECT_LT(norm2(x_schur - x_cg) / norm2(x_cg), 1e-13);
  EXPECT_LT(norm2(x_bicg - x_cg) / norm2(x_cg), 1e-13);
  EXPECT_LT(norm2(x_mixed - x_cg) / norm2(x_cg), 1e-13);
  EXPECT_LT(s_schur.iterations, s_cg.iterations);  // preconditioning pays off
}

TEST_F(FullWorkflowTest, WorkflowReproducibleAcrossVectorLengths) {
  // Re-run thermalization + one solve at VL 128 / generic backend: the
  // plaquette history and the solve iteration count must match.
  const double plaq_512 = qcd::average_plaquette(*gauge_);
  Fermion b(grid_.get()), x(grid_.get());
  gaussian_fill(SiteRNG(5), b);
  x.set_zero();
  const qcd::WilsonDirac<Sd> dirac(*gauge_, 0.25);
  const auto s512 = solver::solve_wilson(dirac, b, x, 1e-8, 600);

  using S128 = simd::SimdComplex<double, simd::kVLB128, simd::Generic>;
  sve::VLGuard vl(128);
  lattice::GridCartesian g128({4, 4, 4, 4},
                              lattice::GridCartesian::default_simd_layout(S128::Nsimd()));
  qcd::GaugeField<S128> gauge128(&g128);
  qcd::random_gauge(SiteRNG(2018), gauge128);
  qcd::MetropolisParams params;
  params.beta = 6.0;
  params.epsilon = 0.24;
  params.seed = 99;
  for (int sweep = 0; sweep < 3; ++sweep) qcd::metropolis_sweep(gauge128, params, sweep);
  EXPECT_NEAR(qcd::average_plaquette(gauge128), plaq_512, 1e-12);

  qcd::LatticeFermion<S128> b128(&g128), x128(&g128);
  gaussian_fill(SiteRNG(5), b128);
  x128.set_zero();
  const qcd::WilsonDirac<S128> dirac128(gauge128, 0.25);
  const auto s128 = solver::solve_wilson(dirac128, b128, x128, 1e-8, 600);
  EXPECT_EQ(s128.iterations, s512.iterations);
}

TEST_F(FullWorkflowTest, PionCorrelatorOnThermalizedGauge) {
  solver::WilsonSolver<Sd> solver(
      *gauge_, 0.5,
      solver::SolverParams{}.with_tolerance(1e-8).with_max_iterations(600));
  qcd::Propagator<Sd> prop(grid_.get());
  const auto report = qcd::compute_propagator(solver, {0, 0, 0, 0}, prop);
  ASSERT_TRUE(report.all_converged());
  EXPECT_LT(report.worst_true_residual(), 1e-7);
  const auto corr = qcd::pion_correlator(prop);
  // Positivity is exact (the pion correlator is a sum of |G|^2 even on a
  // single configuration); time-reflection symmetry only holds in the
  // ensemble average, so here we check positivity and source dominance.
  for (double c : corr) EXPECT_GT(c, 0.0);
  for (std::size_t t = 1; t < corr.size(); ++t) EXPECT_LT(corr[t], corr[0]) << t;
  // Same order of magnitude across the reflection (single-config
  // fluctuations, not orders of magnitude).
  EXPECT_LT(corr[1] / corr[3], 50.0);
  EXPECT_LT(corr[3] / corr[1], 50.0);
}

}  // namespace
}  // namespace svelat
