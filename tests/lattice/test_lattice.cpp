// Lattice container: peek/poke, arithmetic, reductions, random fills.
#include "lattice/lattice_all.h"

#include <gtest/gtest.h>

#include <complex>

#include "simd/simd.h"
#include "sve/sve.h"

namespace svelat::lattice {
namespace {

using C = std::complex<double>;
using S512 = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using ColourVec = tensor::iVector<S512, 3>;
using Field = Lattice<ColourVec>;

class LatticeTest : public ::testing::Test {
 protected:
  void SetUp() override { sve::set_vector_length(512); }

  GridCartesian grid_{{4, 4, 4, 4}, GridCartesian::default_simd_layout(S512::Nsimd())};
};

TEST_F(LatticeTest, PeekPokeRoundtrip) {
  Field f(&grid_);
  f.set_zero();
  using sobj = Field::scalar_object;
  for (int x = 0; x < 4; ++x)
    for (int t = 0; t < 4; ++t) {
      sobj s = tensor::Zero<sobj>();
      for (int c = 0; c < 3; ++c) s(c) = C(x + 10.0 * c, t);
      f.poke({x, 0, 0, t}, s);
    }
  for (int x = 0; x < 4; ++x)
    for (int t = 0; t < 4; ++t) {
      const auto s = f.peek({x, 0, 0, t});
      for (int c = 0; c < 3; ++c) EXPECT_EQ(s(c), C(x + 10.0 * c, t));
    }
  // Untouched site stays zero.
  const auto z = f.peek({1, 2, 3, 1});
  for (int c = 0; c < 3; ++c) EXPECT_EQ(z(c), C{});
}

TEST_F(LatticeTest, SiteArithmetic) {
  Field a(&grid_), b(&grid_);
  SiteRNG rng(1);
  gaussian_fill(rng, a);
  SiteRNG rng2(2);
  gaussian_fill(rng2, b);
  const Field s = a + b;
  const Field d = a - b;
  for (int x = 0; x < 4; ++x) {
    const Coordinate c{x, 1, 2, 3};
    const auto sa = a.peek(c), sb = b.peek(c), ss = s.peek(c), sd = d.peek(c);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(ss(i), sa(i) + sb(i));
      EXPECT_EQ(sd(i), sa(i) - sb(i));
    }
  }
}

TEST_F(LatticeTest, ScalarCoefficientAndAxpy) {
  Field a(&grid_), b(&grid_);
  SiteRNG rng(3);
  gaussian_fill(rng, a);
  SiteRNG rng2(4);
  gaussian_fill(rng2, b);
  const C alpha(0.5, -2.0);
  const Field scaled = alpha * a;
  Field r(&grid_);
  axpy(r, alpha, a, b);
  const Coordinate c{2, 3, 0, 1};
  const auto sa = a.peek(c), sb = b.peek(c), ssc = scaled.peek(c), sr = r.peek(c);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::abs(ssc(i) - alpha * sa(i)), 0.0, 1e-13);
    EXPECT_NEAR(std::abs(sr(i) - (alpha * sa(i) + sb(i))), 0.0, 1e-13);
  }
}

TEST_F(LatticeTest, NormAndInnerProduct) {
  Field a(&grid_);
  SiteRNG rng(5);
  gaussian_fill(rng, a);
  // norm2 == sum over all sites/components of |z|^2, computed scalar-wise.
  double expect = 0;
  C ip_aa{};
  for (std::int64_t o = 0; o < grid_.osites(); ++o)
    for (unsigned l = 0; l < grid_.isites(); ++l) {
      const auto s = a.peek(grid_.global_coor(o, l));
      for (int c = 0; c < 3; ++c) expect += std::norm(s(c));
    }
  ip_aa = innerProduct(a, a);
  EXPECT_NEAR(norm2(a), expect, 1e-9 * expect);
  EXPECT_NEAR(ip_aa.real(), expect, 1e-9 * expect);
  EXPECT_NEAR(ip_aa.imag(), 0.0, 1e-9 * expect);
  // Sesquilinearity: <alpha a, a> = conj(alpha) <a, a>.
  const C alpha(0.0, 1.0);
  const C lhs = innerProduct(alpha * a, a);
  EXPECT_NEAR(std::abs(lhs - std::conj(alpha) * ip_aa), 0.0, 1e-9 * expect);
}

TEST_F(LatticeTest, GaussianFillIsLayoutKeyed) {
  // Refilling with the same seed reproduces the field exactly.
  Field a(&grid_), b(&grid_);
  SiteRNG rng(7);
  gaussian_fill(rng, a);
  SiteRNG rng2(7);
  gaussian_fill(rng2, b);
  EXPECT_EQ(norm2(a), norm2(b));
  const Field d = a - b;
  EXPECT_EQ(norm2(d), 0.0);
}

TEST_F(LatticeTest, FillIdenticalAcrossVectorLengths) {
  // The Sec. V-D cornerstone: the same seed produces the same *physics*
  // field for every vector length; peeking by global coordinate must give
  // bit-identical values.
  using S128 = simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>;
  using F128 = Lattice<tensor::iVector<S128, 3>>;
  Field f512(&grid_);
  SiteRNG rng(11);
  gaussian_fill(rng, f512);

  sve::set_vector_length(128);
  GridCartesian g128({4, 4, 4, 4}, GridCartesian::default_simd_layout(S128::Nsimd()));
  F128 f128(&g128);
  SiteRNG rng2(11);
  gaussian_fill(rng2, f128);

  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y) {
      const Coordinate c{x, y, (x + y) % 4, (3 * x) % 4};
      sve::set_vector_length(512);
      const auto a = f512.peek(c);
      sve::set_vector_length(128);
      const auto b = f128.peek(c);
      for (int i = 0; i < 3; ++i) EXPECT_EQ(a(i), b(i)) << to_string(c);
    }
  sve::set_vector_length(512);
}

TEST_F(LatticeTest, MismatchedGridsRejected) {
  GridCartesian other({4, 4, 4, 8}, GridCartesian::default_simd_layout(S512::Nsimd()));
  Field a(&grid_);
  Field b(&other);
  a.set_zero();
  b.set_zero();
  EXPECT_DEATH((void)(a + b), "different grids");
}

}  // namespace
}  // namespace svelat::lattice
