// Bulk memory-operation tests (copy / streaming copy / prefetch copy /
// splat) and their instruction mixes.
#include "lattice/memory_ops.h"

#include <gtest/gtest.h>

#include "lattice/fill.h"
#include "qcd/types.h"
#include "sve/sve.h"

namespace svelat::lattice {
namespace {

using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Field = qcd::LatticeFermion<S>;

class MemoryOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<GridCartesian>(
        Coordinate{4, 4, 4, 4}, GridCartesian::default_simd_layout(S::Nsimd()));
    src_ = std::make_unique<Field>(grid_.get());
    dst_ = std::make_unique<Field>(grid_.get());
    gaussian_fill(SiteRNG(1), *src_);
    dst_->set_zero();
  }
  std::unique_ptr<GridCartesian> grid_;
  std::unique_ptr<Field> src_, dst_;
};

TEST_F(MemoryOpsTest, CopyIsExact) {
  copy_field(*dst_, *src_);
  EXPECT_EQ(norm2(*dst_ - *src_), 0.0);
}

TEST_F(MemoryOpsTest, StreamCopyIsExactAndNonTemporal) {
  sve::CounterScope scope;
  stream_copy_field(*dst_, *src_);
  // All traffic through LDNT1/STNT1; the classes tally as plain
  // load/store, so check totals: one ld + one st per vector of 8 doubles.
  // (Capture the delta before norm2, whose SIMD arithmetic also loads.)
  const auto d = scope.delta();
  const std::size_t doubles = static_cast<std::size_t>(grid_->gsites()) * 24;
  EXPECT_EQ(d.memory_insns(), 2 * (doubles / 8));
  EXPECT_EQ(norm2(*dst_ - *src_), 0.0);
}

TEST_F(MemoryOpsTest, PrefetchCopyIsExact) {
  prefetch_copy_field(*dst_, *src_);
  EXPECT_EQ(norm2(*dst_ - *src_), 0.0);
}

TEST_F(MemoryOpsTest, SplatWritesConstant) {
  splat_field(*dst_, 2.5);
  const auto s = dst_->peek({1, 2, 3, 0});
  for (int sp = 0; sp < qcd::Ns; ++sp)
    for (int c = 0; c < qcd::Nc; ++c)
      EXPECT_EQ(s(sp)(c), (std::complex<double>{2.5, 2.5}));
}

TEST_F(MemoryOpsTest, CopyWorksAtOtherVectorLengths) {
  using S128 = simd::SimdComplex<double, simd::kVLB128, simd::SveReal>;
  sve::VLGuard vl(128);
  GridCartesian g({4, 4, 4, 4}, GridCartesian::default_simd_layout(S128::Nsimd()));
  qcd::LatticeFermion<S128> a(&g), b(&g);
  gaussian_fill(SiteRNG(2), a);
  b.set_zero();
  copy_field(b, a);
  EXPECT_EQ(norm2(b - a), 0.0);
}

TEST_F(MemoryOpsTest, PrefetchCountsAsInstruction) {
  sve::CounterScope scope;
  prefetch_copy_field(*dst_, *src_);
  const auto with_prefetch = scope.delta();
  sve::CounterScope plain_scope;
  copy_field(*dst_, *src_);
  const auto plain = plain_scope.delta();
  // Prefetching variant executes strictly more (memory-class) instructions.
  EXPECT_GT(with_prefetch.memory_insns(), plain.memory_insns());
}

}  // namespace
}  // namespace svelat::lattice
