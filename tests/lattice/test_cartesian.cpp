// GridCartesian layout tests: the Fig. 1 virtual-node decomposition.
#include "lattice/cartesian.h"

#include <gtest/gtest.h>

#include <set>

namespace svelat::lattice {
namespace {

TEST(Cartesian, DefaultSimdLayoutSpreadsFromLastDim) {
  EXPECT_EQ(GridCartesian::default_simd_layout(1), (Coordinate{1, 1, 1, 1}));
  EXPECT_EQ(GridCartesian::default_simd_layout(2), (Coordinate{1, 1, 1, 2}));
  EXPECT_EQ(GridCartesian::default_simd_layout(4), (Coordinate{1, 1, 2, 2}));
  EXPECT_EQ(GridCartesian::default_simd_layout(8), (Coordinate{1, 2, 2, 2}));
  EXPECT_EQ(GridCartesian::default_simd_layout(16), (Coordinate{2, 2, 2, 2}));
}

TEST(Cartesian, SiteCounts) {
  const GridCartesian g({8, 8, 8, 16}, {1, 1, 2, 2});
  EXPECT_EQ(g.gsites(), 8 * 8 * 8 * 16);
  EXPECT_EQ(g.isites(), 4u);
  EXPECT_EQ(g.osites(), g.gsites() / 4);
  EXPECT_EQ(g.rdimensions(), (Coordinate{8, 8, 4, 8}));
}

TEST(Cartesian, CoordinateMappingBijective) {
  const GridCartesian g({4, 4, 4, 8}, {1, 1, 2, 2});
  std::set<std::pair<std::int64_t, unsigned>> seen;
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y)
      for (int z = 0; z < 4; ++z)
        for (int t = 0; t < 8; ++t) {
          const Coordinate c{x, y, z, t};
          const std::int64_t o = g.outer_index(c);
          const unsigned l = g.inner_index(c);
          EXPECT_GE(o, 0);
          EXPECT_LT(o, g.osites());
          EXPECT_LT(l, g.isites());
          EXPECT_TRUE(seen.emplace(o, l).second) << "duplicate (o,l)";
          EXPECT_EQ(g.global_coor(o, l), c);  // roundtrip
        }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(g.gsites()));
}

TEST(Cartesian, VirtualNodesAreContiguousBlocks) {
  // Fig. 1: virtual node l covers the block [l*rdim, (l+1)*rdim) in each
  // decomposed dimension.
  const GridCartesian g({4, 4, 4, 4}, {1, 1, 2, 2});
  for (int z = 0; z < 4; ++z)
    for (int t = 0; t < 4; ++t) {
      const unsigned lane = g.inner_index({0, 0, z, t});
      const unsigned expect = static_cast<unsigned>((z / 2) + 2 * (t / 2));
      EXPECT_EQ(lane, expect) << z << "," << t;
    }
}

TEST(Cartesian, InteriorNeighbourNoPermute) {
  const GridCartesian g({4, 4, 4, 4}, {1, 1, 2, 2});
  // Site with all outer coords in the block interior.
  const Coordinate c{1, 1, 0, 0};
  const std::int64_t o = g.outer_index(c);
  const auto n = g.neighbour(o, 0, +1);
  EXPECT_EQ(n.permute, 0u);
  EXPECT_EQ(n.osite, g.outer_index({2, 1, 0, 0}));
}

TEST(Cartesian, BoundaryCrossingRequiresPermute) {
  const GridCartesian g({4, 4, 4, 4}, {1, 1, 2, 2});
  // rdims = {4,4,2,2}: outer z=1 is the block edge in dim 2.
  const Coordinate c{0, 0, 1, 0};
  const std::int64_t o = g.outer_index(c);
  const auto n = g.neighbour(o, 2, +1);
  EXPECT_EQ(n.permute, g.permute_distance(2));
  EXPECT_NE(n.permute, 0u);
  EXPECT_EQ(n.osite, g.outer_index({0, 0, 0, 0}));  // wraps within the block
}

TEST(Cartesian, PermuteDistancesAreLaneStrides) {
  const GridCartesian g({4, 4, 4, 4}, {1, 1, 2, 2});
  EXPECT_EQ(g.permute_distance(0), 0u);
  EXPECT_EQ(g.permute_distance(1), 0u);
  EXPECT_EQ(g.permute_distance(2), 1u);  // dim 2 is the fastest decomposed dim
  EXPECT_EQ(g.permute_distance(3), 2u);
  const GridCartesian g8({4, 4, 4, 4}, {1, 2, 2, 2});
  EXPECT_EQ(g8.permute_distance(1), 1u);
  EXPECT_EQ(g8.permute_distance(2), 2u);
  EXPECT_EQ(g8.permute_distance(3), 4u);
}

TEST(Cartesian, UndecomposedDimWrapsWithoutPermute) {
  const GridCartesian g({4, 4, 4, 4}, {1, 1, 2, 2});
  const Coordinate c{3, 0, 0, 0};
  const std::int64_t o = g.outer_index(c);
  const auto n = g.neighbour(o, 0, +1);
  EXPECT_EQ(n.permute, 0u);
  EXPECT_EQ(n.osite, g.outer_index({0, 0, 0, 0}));
}

TEST(Cartesian, NeighbourConsistentWithGlobalDisplacement) {
  // For every site and direction: the neighbour entry must address the
  // outer site of the displaced global coordinate, and the permute flag
  // must equal the lane difference.
  const GridCartesian g({4, 6, 4, 8}, {1, 1, 2, 2});
  for (std::int64_t o = 0; o < g.osites(); ++o) {
    for (unsigned l = 0; l < g.isites(); ++l) {
      const Coordinate x = g.global_coor(o, l);
      for (int mu = 0; mu < Nd; ++mu) {
        for (int disp : {+1, -1}) {
          const Coordinate xn = displace(x, mu, disp, g.fdimensions());
          const auto n = g.neighbour(o, mu, disp);
          EXPECT_EQ(n.osite, g.outer_index(xn));
          const unsigned ln = g.inner_index(xn);
          EXPECT_EQ(ln, l ^ n.permute) << to_string(x) << " mu=" << mu;
        }
      }
    }
  }
}

TEST(Cartesian, RejectsIndivisibleLayout) {
  EXPECT_DEATH(GridCartesian({5, 4, 4, 4}, {2, 1, 1, 1}), "divisible");
}

TEST(Cartesian, RejectsTooSmallBlocks) {
  // fdim 2 with layout 2 gives blocks of one site: neighbours would live in
  // the same vector, which the layout forbids.
  EXPECT_DEATH(GridCartesian({2, 4, 4, 4}, {2, 1, 1, 1}), "at least 2");
}

}  // namespace
}  // namespace svelat::lattice
