// Site-local field operation tests.
#include "lattice/local_ops.h"

#include <gtest/gtest.h>

#include "lattice/fill.h"
#include "qcd/su3.h"
#include "sve/sve.h"

namespace svelat::lattice {
namespace {

using C = std::complex<double>;
using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using MatField = Lattice<qcd::ColourMatrix<S>>;

class LocalOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<GridCartesian>(
        Coordinate{4, 4, 4, 4}, GridCartesian::default_simd_layout(S::Nsimd()));
  }
  std::unique_ptr<GridCartesian> grid_;
};

TEST_F(LocalOpsTest, LocalMultMatchesPerSiteProduct) {
  MatField a(grid_.get()), b(grid_.get()), c(grid_.get());
  uniform_fill(SiteRNG(1), a, -1.0, 1.0);
  uniform_fill(SiteRNG(2), b, -1.0, 1.0);
  local_mult(c, a, b);
  const Coordinate x{1, 2, 3, 0};
  const auto sa = a.peek(x), sb = b.peek(x), sc = c.peek(x);
  for (int i = 0; i < qcd::Nc; ++i)
    for (int j = 0; j < qcd::Nc; ++j) {
      C expect{};
      for (int k = 0; k < qcd::Nc; ++k) expect += sa(i, k) * sb(k, j);
      EXPECT_NEAR(std::abs(sc(i, j) - expect), 0.0, 1e-13);
    }
}

TEST_F(LocalOpsTest, LocalAdjIsInvolution) {
  MatField a(grid_.get()), b(grid_.get()), c(grid_.get());
  uniform_fill(SiteRNG(3), a, -1.0, 1.0);
  local_adj(b, a);
  local_adj(c, b);
  const Coordinate x{0, 1, 2, 3};
  const auto sa = a.peek(x), sb = b.peek(x), sc = c.peek(x);
  for (int i = 0; i < qcd::Nc; ++i)
    for (int j = 0; j < qcd::Nc; ++j) {
      EXPECT_EQ(sb(i, j), std::conj(sa(j, i)));
      EXPECT_EQ(sc(i, j), sa(i, j));
    }
}

TEST_F(LocalOpsTest, TraceSumMatchesScalarLoop) {
  MatField a(grid_.get());
  uniform_fill(SiteRNG(4), a, -1.0, 1.0);
  const C got = local_trace_sum(a);
  C expect{};
  for (std::int64_t o = 0; o < grid_->osites(); ++o)
    for (unsigned l = 0; l < grid_->isites(); ++l) {
      const auto s = a.peek(grid_->global_coor(o, l));
      for (int i = 0; i < qcd::Nc; ++i) expect += s(i, i);
    }
  EXPECT_NEAR(std::abs(got - expect), 0.0, 1e-9);
}

TEST_F(LocalOpsTest, TraceOfUUdagIsNcTimesVolume) {
  // For unitary links, tr(U U^dag) = Nc at every site.
  MatField u(grid_.get()), udag(grid_.get()), prod(grid_.get());
  qcd::GaugeField<S> gauge(grid_.get());
  qcd::random_gauge(SiteRNG(5), gauge);
  u = gauge.U[0];
  local_adj(udag, u);
  local_mult(prod, u, udag);
  const C tr = local_trace_sum(prod);
  EXPECT_NEAR(tr.real(), 3.0 * static_cast<double>(grid_->gsites()), 1e-8);
  EXPECT_NEAR(tr.imag(), 0.0, 1e-9);
}

}  // namespace
}  // namespace svelat::lattice
