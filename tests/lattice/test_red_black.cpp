// GridRedBlackCartesian: half-checkerboard indexing, pick/set round trips,
// and the parity-restricted stencil tables.
#include "lattice/red_black.h"

#include <gtest/gtest.h>

#include "lattice/cshift.h"
#include "lattice/fill.h"
#include "qcd/types.h"
#include "sve/sve.h"
#include "support/random.h"

namespace svelat::lattice {
namespace {

using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Fermion = qcd::LatticeFermion<S>;
using HalfFermion = qcd::HalfLatticeFermion<S>;

class RedBlackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<GridCartesian>(
        Coordinate{4, 4, 4, 8}, GridCartesian::default_simd_layout(S::Nsimd()));
    even_ = std::make_unique<GridRedBlackCartesian>(grid_.get(), kParityEven);
    odd_ = std::make_unique<GridRedBlackCartesian>(grid_.get(), kParityOdd);
  }

  std::unique_ptr<GridCartesian> grid_;
  std::unique_ptr<GridRedBlackCartesian> even_;
  std::unique_ptr<GridRedBlackCartesian> odd_;
};

TEST_F(RedBlackTest, HalvesTheOuterSites) {
  EXPECT_EQ(even_->osites() + odd_->osites(), grid_->osites());
  EXPECT_EQ(even_->osites(), odd_->osites());
  EXPECT_EQ(even_->isites(), grid_->isites());
  EXPECT_EQ(even_->gsites() + odd_->gsites(), grid_->gsites());
}

TEST_F(RedBlackTest, IndexMapsRoundTrip) {
  for (const auto* rb : {even_.get(), odd_.get()}) {
    for (std::int64_t h = 0; h < rb->osites(); ++h) {
      const std::int64_t o = rb->full_osite(h);
      EXPECT_EQ(rb->half_osite(o), h);
      EXPECT_EQ(outer_site_parity(*grid_, o), rb->parity());
      // Every lane of the outer site has the checkerboard's parity.
      for (unsigned l = 0; l < rb->isites(); ++l)
        EXPECT_EQ(coordinate_parity(rb->global_coor(h, l)), rb->parity());
    }
  }
  // The two parities partition the outer sites.
  for (std::int64_t o = 0; o < grid_->osites(); ++o) {
    EXPECT_NE(even_->half_osite(o) >= 0, odd_->half_osite(o) >= 0);
  }
}

TEST_F(RedBlackTest, CoordinateIndexingMatchesFullGrid) {
  for (const auto* rb : {even_.get(), odd_.get()}) {
    for (std::int64_t h = 0; h < rb->osites(); ++h) {
      for (unsigned l = 0; l < rb->isites(); ++l) {
        const Coordinate x = rb->global_coor(h, l);
        EXPECT_EQ(rb->outer_index(x), h);
        EXPECT_EQ(rb->inner_index(x), l);
        EXPECT_EQ(rb->global_index(x), grid_->global_index(x));
      }
    }
  }
}

TEST_F(RedBlackTest, PickSetRoundTripsBitwise) {
  Fermion f(grid_.get()), rebuilt(grid_.get());
  gaussian_fill(SiteRNG(11), f);
  HalfFermion f_e(even_.get()), f_o(odd_.get());
  pick_checkerboard(f, f_e);
  pick_checkerboard(f, f_o);
  set_checkerboard(rebuilt, f_e);
  set_checkerboard(rebuilt, f_o);
  EXPECT_EQ(norm2(rebuilt - f), 0.0);
  // Norms split by parity (different reduction grouping: tolerance).
  const double n = norm2(f);
  EXPECT_NEAR(norm2(f_e) + norm2(f_o), n, 1e-12 * n);
}

TEST_F(RedBlackTest, HalfFieldFillMatchesFullFieldParity) {
  // The RNG keys are full-lattice site indices, so filling a half field
  // directly bitwise matches picking the parity out of a full-field fill.
  Fermion f(grid_.get());
  gaussian_fill(SiteRNG(21), f);
  HalfFermion picked(even_.get()), direct(even_.get());
  pick_checkerboard(f, picked);
  gaussian_fill(SiteRNG(21), direct);
  EXPECT_EQ(norm2(picked - direct), 0.0);
}

TEST_F(RedBlackTest, RedBlackStencilAgreesWithFullStencil) {
  const Stencil full(grid_.get());
  const StencilRedBlack st_eo(even_.get(), odd_.get());
  const StencilRedBlack st_oe(odd_.get(), even_.get());
  for (const auto* st : {&st_eo, &st_oe}) {
    const GridRedBlackCartesian* tgt = st->target();
    const GridRedBlackCartesian* src = st->source();
    for (std::int64_t h = 0; h < tgt->osites(); ++h) {
      const std::int64_t o = tgt->full_osite(h);
      for (int dir = 0; dir < kStencilDirs; ++dir) {
        const StencilEntry& e = st->entry(h, dir);
        const StencilEntry& f = full.entry(o, dir);
        ASSERT_GE(e.osite, 0) << "neighbour not on the opposite parity";
        EXPECT_EQ(src->full_osite(e.osite), f.osite);
        EXPECT_EQ(e.permute, f.permute);
      }
    }
  }
}

TEST_F(RedBlackTest, HalfFieldAxpyNormMatchesPickedFull) {
  // The solver kernels (axpy, axpy_norm2, innerProduct) on half fields
  // must agree with the same arithmetic on the picked-out full data.
  Fermion a(grid_.get()), b(grid_.get());
  gaussian_fill(SiteRNG(31), a);
  gaussian_fill(SiteRNG(32), b);
  HalfFermion a_e(even_.get()), b_e(even_.get()), r_e(even_.get());
  pick_checkerboard(a, a_e);
  pick_checkerboard(b, b_e);
  const double fused = axpy_norm2(r_e, 0.75, a_e, b_e);
  HalfFermion r2(even_.get());
  axpy(r2, 0.75, a_e, b_e);
  EXPECT_EQ(norm2(r_e - r2), 0.0);
  EXPECT_EQ(fused, norm2(r2));
  const auto ip = innerProduct(a_e, b_e);
  EXPECT_TRUE(std::isfinite(ip.real()) && std::isfinite(ip.imag()));
}

TEST_F(RedBlackTest, RejectsOddExtents) {
  GridCartesian odd_extent({4, 4, 4, 7}, {1, 1, 1, 1});
  EXPECT_DEATH(GridRedBlackCartesian rb(&odd_extent, kParityEven),
               "even lattice extents");
}

}  // namespace
}  // namespace svelat::lattice
