// Cshift: the vectorized shift (with Fig. 1 boundary permutes) must agree
// with the naive scalar definition r(x) = f(x + disp*mu^) for every site,
// direction, vector length and backend.
#include <gtest/gtest.h>

#include <complex>

#include "lattice/lattice_all.h"
#include "simd/simd.h"
#include "sve/sve.h"

namespace svelat::lattice {
namespace {

using C = std::complex<double>;

template <typename S>
struct CshiftChecker {
  using Field = Lattice<tensor::iVector<S, 3>>;

  static void run(const Coordinate& dims) {
    sve::set_vector_length(8 * S::vlb);
    GridCartesian g(dims, GridCartesian::default_simd_layout(S::Nsimd()));
    Field f(&g);
    SiteRNG rng(42);
    gaussian_fill(rng, f);

    for (int mu = 0; mu < Nd; ++mu) {
      for (int disp : {+1, -1}) {
        const Field shifted = Cshift(f, mu, disp);
        for (std::int64_t o = 0; o < g.osites(); ++o) {
          for (unsigned l = 0; l < g.isites(); ++l) {
            const Coordinate x = g.global_coor(o, l);
            const Coordinate xn = displace(x, mu, disp, dims);
            const auto got = shifted.peek(x);
            const auto expect = f.peek(xn);
            for (int c = 0; c < 3; ++c) {
              ASSERT_EQ(got(c), expect(c))
                  << "mu=" << mu << " disp=" << disp << " x=" << to_string(x);
            }
          }
        }
      }
    }
    sve::set_vector_length(512);
  }
};

TEST(Cshift, MatchesNaive512Fcmla) {
  CshiftChecker<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>::run(
      {4, 4, 4, 4});
}

TEST(Cshift, MatchesNaive256Fcmla) {
  CshiftChecker<simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>>::run(
      {4, 4, 4, 4});
}

TEST(Cshift, MatchesNaive128Fcmla) {
  CshiftChecker<simd::SimdComplex<double, simd::kVLB128, simd::SveFcmla>>::run(
      {4, 4, 4, 4});
}

TEST(Cshift, MatchesNaive512Real) {
  CshiftChecker<simd::SimdComplex<double, simd::kVLB512, simd::SveReal>>::run(
      {4, 4, 4, 4});
}

TEST(Cshift, MatchesNaive512Generic) {
  CshiftChecker<simd::SimdComplex<double, simd::kVLB512, simd::Generic>>::run(
      {4, 4, 4, 4});
}

TEST(Cshift, MatchesNaiveAnisotropic) {
  CshiftChecker<simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>>::run(
      {4, 6, 4, 8});
}

TEST(Cshift, MatchesNaiveFloat512) {
  CshiftChecker<simd::SimdComplex<float, simd::kVLB512, simd::SveFcmla>>::run(
      {4, 4, 4, 4});
}

TEST(Cshift, ForwardBackwardIsIdentity) {
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  sve::VLGuard vl(512);
  GridCartesian g({4, 4, 4, 4}, GridCartesian::default_simd_layout(S::Nsimd()));
  Lattice<tensor::iVector<S, 3>> f(&g);
  SiteRNG rng(9);
  gaussian_fill(rng, f);
  for (int mu = 0; mu < Nd; ++mu) {
    const auto back = Cshift(Cshift(f, mu, +1), mu, -1);
    const auto diff = back - f;
    EXPECT_EQ(norm2(diff), 0.0) << mu;
  }
}

TEST(Cshift, FullOrbitReturnsToStart) {
  using S = simd::SimdComplex<double, simd::kVLB256, simd::SveReal>;
  sve::VLGuard vl(256);
  GridCartesian g({4, 4, 4, 4}, GridCartesian::default_simd_layout(S::Nsimd()));
  Lattice<tensor::iVector<S, 3>> f(&g);
  SiteRNG rng(10);
  gaussian_fill(rng, f);
  // Shifting L times around a periodic direction is the identity.
  auto shifted = f;
  for (int step = 0; step < 4; ++step) shifted = Cshift(shifted, 3, +1);
  EXPECT_EQ(norm2(shifted - f), 0.0);
}

TEST(Cshift, NormInvariantUnderShift) {
  using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
  sve::VLGuard vl(512);
  GridCartesian g({4, 4, 4, 4}, GridCartesian::default_simd_layout(S::Nsimd()));
  Lattice<tensor::iVector<S, 3>> f(&g);
  SiteRNG rng(11);
  gaussian_fill(rng, f);
  const double n = norm2(f);
  for (int mu = 0; mu < Nd; ++mu)
    EXPECT_DOUBLE_EQ(norm2(Cshift(f, mu, +1)), n) << mu;
}

}  // namespace
}  // namespace svelat::lattice
