// BlockLattice linear algebra: per-column bitwise contracts.
//
// The multi-RHS engine's correctness story rests on these primitives
// reproducing the single-field kernels column by column BITWISE
// (lattice/block.h header): same coefficient splat, same expression
// shape, same deterministic chunked reduction tree.  The masked variants
// must additionally leave frozen columns' bits untouched.
#include "lattice/block.h"

#include <gtest/gtest.h>

#include "lattice/fill.h"
#include "qcd/types.h"
#include "sve/sve.h"

namespace svelat::lattice {
namespace {

using S = simd::SimdComplex<double, simd::kVLB256, simd::SveFcmla>;
using vobj = qcd::SpinColourVector<S>;
using Field = qcd::LatticeFermion<S>;
constexpr int N = 4;
using Block = BlockLattice<vobj, N>;

struct BlockFixture {
  BlockFixture()
      : vl(8 * S::vlb),
        grid({4, 4, 4, 8}, GridCartesian::default_simd_layout(S::Nsimd())) {
    for (int j = 0; j < N; ++j) {
      cols.emplace_back(&grid);
      gaussian_fill(SiteRNG(100 + static_cast<unsigned>(j)), cols.back());
    }
  }

  void fill(Block& b, unsigned seed_base) const {
    Field tmp(&grid);
    for (int j = 0; j < N; ++j) {
      gaussian_fill(SiteRNG(seed_base + static_cast<unsigned>(j)), tmp);
      b.copy_in_column(j, tmp);
    }
  }

  sve::VLGuard vl;
  GridCartesian grid;
  std::vector<Field> cols;
};

bool fields_bitwise(const Field& a, const Field& b) {
  for (std::int64_t o = 0; o < a.osites(); ++o) {
    const auto* pa = reinterpret_cast<const double*>(&a[o]);
    const auto* pb = reinterpret_cast<const double*>(&b[o]);
    for (std::size_t k = 0; k < sizeof(vobj) / sizeof(double); ++k)
      if (pa[k] != pb[k]) return false;
  }
  return true;
}

TEST(BlockLattice, ColumnRoundTripIsExact) {
  BlockFixture f;
  Block b(&f.grid);
  for (int j = 0; j < N; ++j) b.copy_in_column(j, f.cols[static_cast<std::size_t>(j)]);
  Field out(&f.grid);
  for (int j = 0; j < N; ++j) {
    b.copy_out_column(j, out);
    EXPECT_TRUE(fields_bitwise(out, f.cols[static_cast<std::size_t>(j)])) << "col " << j;
  }
}

TEST(BlockLattice, BlockNorm2MatchesPerColumnNorm2Bitwise) {
  BlockFixture f;
  Block b(&f.grid);
  for (int j = 0; j < N; ++j) b.copy_in_column(j, f.cols[static_cast<std::size_t>(j)]);
  const std::array<double, N> n = block_norm2(b);
  for (int j = 0; j < N; ++j)
    EXPECT_EQ(n[static_cast<std::size_t>(j)], norm2(f.cols[static_cast<std::size_t>(j)]))
        << "col " << j;
}

TEST(BlockLattice, MaskedAxpyNorm2MatchesSequentialAndFreezesColumns) {
  BlockFixture f;
  Block x(&f.grid), y(&f.grid), r(&f.grid);
  f.fill(x, 200);
  f.fill(y, 300);
  f.fill(r, 400);  // pre-existing bits: frozen columns must keep them

  std::array<double, N> a;
  for (int j = 0; j < N; ++j) a[static_cast<std::size_t>(j)] = 0.3 + 0.1 * j;
  ColumnMask<N> active = all_columns<N>();
  active[1] = false;  // freeze column 1

  // Snapshot column 1's bits before the masked update.
  Field frozen_before(&f.grid);
  r.copy_out_column(1, frozen_before);

  const std::array<double, N> rn =
      block_axpy_norm2<vobj, N, GridCartesian>(r, a, x, y, active);

  Field xc(&f.grid), yc(&f.grid), rc(&f.grid), out(&f.grid);
  for (int j = 0; j < N; ++j) {
    const auto u = static_cast<std::size_t>(j);
    r.copy_out_column(j, out);
    if (!active[u]) {
      EXPECT_TRUE(fields_bitwise(out, frozen_before)) << "frozen col changed";
      EXPECT_EQ(rn[u], 0.0);
      continue;
    }
    x.copy_out_column(j, xc);
    y.copy_out_column(j, yc);
    const double rn_seq = axpy_norm2(rc, a[u], xc, yc);
    EXPECT_TRUE(fields_bitwise(out, rc)) << "col " << j;
    EXPECT_EQ(rn[u], rn_seq) << "col " << j;
  }
}

TEST(BlockLattice, XpUpdateMatchesSequentialAxpyPairBitwise) {
  BlockFixture f;
  Block x(&f.grid), p(&f.grid), r(&f.grid);
  f.fill(x, 500);
  f.fill(p, 600);
  f.fill(r, 700);

  // Sequential reference: x += alpha p; p = beta p + r, column by column,
  // captured BEFORE the fused update mutates the blocks.
  std::vector<Field> x_ref, p_ref;
  std::array<double, N> alpha, beta;
  for (int j = 0; j < N; ++j) {
    const auto u = static_cast<std::size_t>(j);
    alpha[u] = 0.7 - 0.05 * j;
    beta[u] = 0.2 + 0.1 * j;
    Field xc(&f.grid), pc(&f.grid), rc(&f.grid);
    x.copy_out_column(j, xc);
    p.copy_out_column(j, pc);
    r.copy_out_column(j, rc);
    axpy(xc, alpha[u], pc, xc);  // x += alpha p (pre-update p)
    axpy(pc, beta[u], pc, rc);   // p = beta p + r
    x_ref.push_back(xc);
    p_ref.push_back(pc);
  }

  ColumnMask<N> active = all_columns<N>();
  active[2] = false;
  Field x2_before(&f.grid), p2_before(&f.grid);
  x.copy_out_column(2, x2_before);
  p.copy_out_column(2, p2_before);

  block_xp_update<vobj, N, GridCartesian>(x, p, r, alpha, beta, active);

  Field out(&f.grid);
  for (int j = 0; j < N; ++j) {
    x.copy_out_column(j, out);
    if (j == 2) {
      EXPECT_TRUE(fields_bitwise(out, x2_before)) << "frozen x changed";
      p.copy_out_column(j, out);
      EXPECT_TRUE(fields_bitwise(out, p2_before)) << "frozen p changed";
      continue;
    }
    EXPECT_TRUE(fields_bitwise(out, x_ref[static_cast<std::size_t>(j)])) << "x col " << j;
    p.copy_out_column(j, out);
    EXPECT_TRUE(fields_bitwise(out, p_ref[static_cast<std::size_t>(j)])) << "p col " << j;
  }
}

}  // namespace
}  // namespace svelat::lattice
