// Expression-template layer tests: fused evaluation must agree exactly
// with the eager operators.
#include "lattice/expr.h"

#include <gtest/gtest.h>

#include "lattice/fill.h"
#include "qcd/types.h"
#include "sve/sve.h"

namespace svelat::lattice {
namespace {

using C = std::complex<double>;
using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Field = Lattice<tensor::iVector<S, 3>>;
using MatField = Lattice<qcd::ColourMatrix<S>>;

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<GridCartesian>(
        Coordinate{4, 4, 4, 4}, GridCartesian::default_simd_layout(S::Nsimd()));
    a_ = std::make_unique<Field>(grid_.get());
    b_ = std::make_unique<Field>(grid_.get());
    c_ = std::make_unique<Field>(grid_.get());
    gaussian_fill(SiteRNG(1), *a_);
    gaussian_fill(SiteRNG(2), *b_);
    gaussian_fill(SiteRNG(3), *c_);
  }
  std::unique_ptr<GridCartesian> grid_;
  std::unique_ptr<Field> a_, b_, c_;
};

TEST_F(ExprTest, AddSubMatchEager) {
  using namespace expr;
  Field r(grid_.get());
  eval_into(r, ref(*a_) + ref(*b_) - ref(*c_));
  const Field expect = *a_ + *b_ - *c_;
  EXPECT_EQ(norm2(r - expect), 0.0);
}

TEST_F(ExprTest, ScaleAndNegate) {
  using namespace expr;
  Field r(grid_.get());
  const C alpha(0.5, -1.5);
  eval_into(r, alpha * ref(*a_) + (-ref(*b_)));
  const Field expect = alpha * *a_ - *b_;
  EXPECT_EQ(norm2(r - expect), 0.0);
}

TEST_F(ExprTest, DoubleCoefficient) {
  using namespace expr;
  Field r(grid_.get());
  eval_into(r, 2.0 * ref(*a_));
  const Field expect = 2.0 * *a_;
  EXPECT_EQ(norm2(r - expect), 0.0);
}

TEST_F(ExprTest, TimesIAndConjugate) {
  using namespace expr;
  Field r(grid_.get()), s(grid_.get());
  eval_into(r, timesI(ref(*a_)));
  eval_into(s, conjugate(ref(*a_)));
  for (int t = 0; t < 4; ++t) {
    const Coordinate x{t, 0, (t + 1) % 4, 2};
    const auto sa = a_->peek(x), sr = r.peek(x), ss = s.peek(x);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(sr(i), C(0, 1) * sa(i));
      EXPECT_EQ(ss(i), std::conj(sa(i)));
    }
  }
}

TEST_F(ExprTest, DeepExpressionSinglePass) {
  using namespace expr;
  Field r(grid_.get());
  const C alpha(2.0, 0.5);
  eval_into(r, alpha * (ref(*a_) + ref(*b_)) - timesI(ref(*c_) - ref(*a_)));
  // Eager equivalent with temporaries.
  const Field t1 = *a_ + *b_;
  const Field t2 = *c_ - *a_;
  Field t3(grid_.get());
  for (std::int64_t o = 0; o < grid_->osites(); ++o) t3[o] = tensor::timesI(t2[o]);
  const Field expect = alpha * t1 - t3;
  EXPECT_EQ(norm2(r - expect), 0.0);
}

TEST_F(ExprTest, MatrixProductExpression) {
  using namespace expr;
  MatField u(grid_.get()), v(grid_.get()), r(grid_.get());
  uniform_fill(SiteRNG(4), u, -1.0, 1.0);
  uniform_fill(SiteRNG(5), v, -1.0, 1.0);
  eval_into(r, ref(u) * adj(ref(v)));
  for (int t = 0; t < 4; ++t) {
    const Coordinate x{1, t, 2, (t + 2) % 4};
    const auto su = u.peek(x), sv = v.peek(x), sr = r.peek(x);
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        C expect{};
        for (int k = 0; k < 3; ++k) expect += su(i, k) * std::conj(sv(j, k));
        EXPECT_NEAR(std::abs(sr(i, j) - expect), 0.0, 1e-13);
      }
  }
}

TEST_F(ExprTest, FusedInnerProduct) {
  using namespace expr;
  const C alpha(0.0, 2.0);
  const C fused = inner_product(*a_, alpha * ref(*b_) + ref(*c_));
  const Field materialized = alpha * *b_ + *c_;
  const C eager = innerProduct(*a_, materialized);
  EXPECT_NEAR(std::abs(fused - eager), 0.0, 1e-10 * std::abs(eager));
}

TEST_F(ExprTest, GridMismatchRejected) {
  using namespace expr;
  GridCartesian other({4, 4, 4, 8}, GridCartesian::default_simd_layout(S::Nsimd()));
  Field r(&other);
  EXPECT_DEATH(eval_into(r, ref(*a_) + ref(*b_)), "different grid");
}

}  // namespace
}  // namespace svelat::lattice
