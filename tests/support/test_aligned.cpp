// Unit tests for aligned allocation.
#include "support/aligned.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

namespace svelat {
namespace {

TEST(Aligned, VectorStorageIsMaxVectorAligned) {
  for (std::size_t n : {1u, 3u, 17u, 1000u}) {
    AlignedVector<double> v(n, 1.0);
    EXPECT_TRUE(is_aligned(v.data(), kMaxVectorBytes)) << "n=" << n;
  }
}

TEST(Aligned, DifferentElementTypes) {
  AlignedVector<float> f(33);
  AlignedVector<std::uint16_t> h(7);
  EXPECT_TRUE(is_aligned(f.data(), kMaxVectorBytes));
  EXPECT_TRUE(is_aligned(h.data(), kMaxVectorBytes));
}

TEST(Aligned, VectorBehavesLikeStdVector) {
  AlignedVector<int> v(10);
  std::iota(v.begin(), v.end(), 0);
  v.push_back(10);
  EXPECT_EQ(v.size(), 11u);
  for (int i = 0; i <= 10; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  AlignedVector<int> copy = v;
  EXPECT_EQ(copy, v);
}

TEST(Aligned, IsAlignedHelper) {
  alignas(64) char buf[128];
  EXPECT_TRUE(is_aligned(buf, 64));
  EXPECT_FALSE(is_aligned(buf + 1, 2));
}

}  // namespace
}  // namespace svelat
