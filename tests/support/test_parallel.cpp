// Threading layer tests: exact index coverage, instruction-count
// transparency, and bitwise thread-count-independence of the deterministic
// reductions (expression eval and CG residuals serial vs threaded).
#include "support/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "lattice/expr.h"
#include "lattice/fill.h"
#include "lattice/memory_ops.h"
#include "qcd/types.h"
#include "qcd/wilson.h"
#include "solver/cg.h"
#include "sve/sve.h"

namespace svelat {
namespace {

using S = simd::SimdComplex<double, simd::kVLB512, simd::SveFcmla>;
using Field = lattice::Lattice<tensor::iVector<S, 3>>;

TEST(ThreadForTest, CoversEveryIndexExactlyOnce) {
  constexpr std::int64_t n = 1237;  // deliberately not a multiple of anything
  std::vector<int> hits(n, 0);
  thread_for(n, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << i;
}

TEST(ThreadForTest, HandlesEmptyAndSingleIteration) {
  std::atomic<int> calls{0};
  thread_for(0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  thread_for(1, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadForTest, NestedCallsFallBackToSerial) {
  std::atomic<std::int64_t> total{0};
  thread_for(8, [&](std::int64_t) {
    // Inside a parallel construct the inner loop must not spawn a nested
    // team; it still has to cover its range exactly once.
    std::int64_t local = 0;
    thread_for(100, [&](std::int64_t) { ++local; });
    total += local;
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ParallelRegionTest, RunsBodyOncePerThread) {
  std::atomic<int> bodies{0};
  parallel_region([&] { ++bodies; });
  EXPECT_EQ(bodies.load(), max_threads());
}

TEST(ParallelRegionTest, ThreadForInsideRegionWorkSharesExactlyOnce) {
  constexpr std::int64_t n = 999;
  std::vector<int> hits(n, 0);
  std::vector<std::complex<double>> sums(static_cast<std::size_t>(max_threads()));
  parallel_region([&] {
    // Work-shared across the team: each index is claimed by one thread.
    thread_for(n, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
    // A reduction inside the region stays private to each thread and must
    // still see the full range.
    sums[static_cast<std::size_t>(thread_num())] = parallel_reduce(
        n, std::complex<double>{},
        [](std::int64_t i) { return std::complex<double>(static_cast<double>(i), 0.0); });
  });
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << i;
  const double expect = static_cast<double>(n) * (n - 1) / 2;
  for (int t = 0; t < max_threads(); ++t)
    EXPECT_EQ(sums[static_cast<std::size_t>(t)].real(), expect) << t;
}

TEST(ParallelReduceTest, SumsLongRangeExactly) {
  constexpr std::int64_t n = 10'000;
  const double sum =
      parallel_reduce(n, 0.0, [](std::int64_t i) { return static_cast<double>(i); });
  EXPECT_EQ(sum, static_cast<double>(n) * (n - 1) / 2);
}

TEST(ParallelReduceTest, BitwiseIndependentOfThreadCount) {
  constexpr std::int64_t n = 4096 + 17;
  auto run = [&] {
    return parallel_reduce(n, 0.0, [](std::int64_t i) {
      // An ill-conditioned mix that would expose any regrouping.
      return 1.0 / static_cast<double>(i + 1) * ((i % 2) != 0 ? -1.0 : 1.0);
    });
  };
  ThreadCountGuard one(1);
  const double serial = run();
  for (int t : {2, 3, 4, 7}) {
    ThreadCountGuard guard(t);
    const double threaded = run();
    EXPECT_EQ(serial, threaded) << t << " threads";
  }
}

class ParallelLatticeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sve::set_vector_length(512);
    grid_ = std::make_unique<lattice::GridCartesian>(
        lattice::Coordinate{4, 4, 4, 8},
        lattice::GridCartesian::default_simd_layout(S::Nsimd()));
  }
  std::unique_ptr<lattice::GridCartesian> grid_;
};

TEST_F(ParallelLatticeTest, FillIsThreadCountInvariant) {
  Field serial(grid_.get()), threaded(grid_.get());
  {
    ThreadCountGuard one(1);
    gaussian_fill(SiteRNG(11), serial);
  }
  {
    ThreadCountGuard four(4);
    gaussian_fill(SiteRNG(11), threaded);
  }
  EXPECT_EQ(norm2(serial - threaded), 0.0);
}

TEST_F(ParallelLatticeTest, ExpressionEvalMatchesSerialBitwise) {
  Field a(grid_.get()), b(grid_.get()), c(grid_.get());
  gaussian_fill(SiteRNG(1), a);
  gaussian_fill(SiteRNG(2), b);
  gaussian_fill(SiteRNG(3), c);
  const std::complex<double> alpha{0.5, -1.25};

  Field r_serial(grid_.get()), r_threaded(grid_.get());
  using namespace lattice::expr;
  std::complex<double> ip_serial, ip_threaded;
  {
    ThreadCountGuard one(1);
    eval_into(r_serial, alpha * ref(a) + ref(b) - timesI(ref(c)));
    ip_serial = inner_product(a, alpha * ref(b) + ref(c));
  }
  {
    ThreadCountGuard four(4);
    eval_into(r_threaded, alpha * ref(a) + ref(b) - timesI(ref(c)));
    ip_threaded = inner_product(a, alpha * ref(b) + ref(c));
  }
  EXPECT_EQ(norm2(r_serial - r_threaded), 0.0);
  EXPECT_EQ(ip_serial.real(), ip_threaded.real());
  EXPECT_EQ(ip_serial.imag(), ip_threaded.imag());
}

TEST_F(ParallelLatticeTest, CgResidualsMatchSerialBitwise) {
  qcd::GaugeField<S> gauge(grid_.get());
  qcd::random_gauge(SiteRNG(2018), gauge);
  qcd::LatticeFermion<S> b(grid_.get());
  gaussian_fill(SiteRNG(6), b);
  const qcd::WilsonDirac<S> dirac(gauge, 0.2);

  auto solve = [&] {
    qcd::LatticeFermion<S> x(grid_.get());
    x.set_zero();
    return solver::solve_wilson(dirac, b, x, 1e-8, 200);
  };
  ThreadCountGuard one(1);
  const auto serial = solve();
  ThreadCountGuard four(4);
  const auto threaded = solve();

  ASSERT_EQ(serial.iterations, threaded.iterations);
  ASSERT_EQ(serial.residual_history.size(), threaded.residual_history.size());
  for (std::size_t k = 0; k < serial.residual_history.size(); ++k)
    EXPECT_EQ(serial.residual_history[k], threaded.residual_history[k])
        << "iteration " << k;
  EXPECT_EQ(serial.final_residual, threaded.final_residual);
  EXPECT_EQ(serial.true_residual, threaded.true_residual);
}

TEST_F(ParallelLatticeTest, TracedLoopsCaptureTheFullInstructionStream) {
  Field src(grid_.get()), dst(grid_.get());
  gaussian_fill(SiteRNG(5), src);
  dst.set_zero();

  auto trace_copy = [&] {
    sve::Tracer tracer;
    {
      sve::TraceScope scope(tracer);
      lattice::copy_field(dst, src);
    }
    return tracer.lines().size();
  };
  ThreadCountGuard one(1);
  const auto serial = trace_copy();
  ThreadCountGuard four(4);
  const auto threaded = trace_copy();  // tracer installed => loop serializes
  EXPECT_GT(serial, 0u);
  EXPECT_EQ(serial, threaded);
}

TEST_F(ParallelLatticeTest, CounterScopeSeesWorkerThreadInstructions) {
  Field src(grid_.get()), dst(grid_.get());
  gaussian_fill(SiteRNG(5), src);
  dst.set_zero();

  auto count_copy = [&] {
    sve::CounterScope scope;
    lattice::copy_field(dst, src);
    return scope.delta().memory_insns();
  };
  ThreadCountGuard one(1);
  const auto serial = count_copy();
  ThreadCountGuard four(4);
  const auto threaded = count_copy();
  EXPECT_GT(serial, 0u);
  EXPECT_EQ(serial, threaded);
}

}  // namespace
}  // namespace svelat
