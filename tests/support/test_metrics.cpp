// The wall-clock metrics registry: accumulation, rate math, the runtime
// switch and the reports.  Rates are machine-dependent, so assertions
// are structural (counts, monotonicity, field presence) -- never "this
// kernel reaches X GB/s".  In SVELAT_METRICS_DISABLED builds the suite
// shrinks to checking that the timer really is compiled out.
#include <gtest/gtest.h>

#include <string>

#include "support/metrics.h"

namespace svelat::metrics {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    reset();
    set_enabled(true);
  }
};

TEST_F(MetricsTest, RegionStatsRateMath) {
  RegionStats s;
  s.calls = 4;
  s.seconds = 2.0;
  s.bytes = 8e9;
  s.flops = 3e9;
  EXPECT_DOUBLE_EQ(s.gb_per_sec(), 4.0);
  EXPECT_DOUBLE_EQ(s.gflop_per_sec(), 1.5);
  EXPECT_DOUBLE_EQ(s.calls_per_sec(), 2.0);

  // A region that never ran (or was timed at zero) reports zero rates,
  // not a division blow-up.
  EXPECT_DOUBLE_EQ(RegionStats{}.gb_per_sec(), 0.0);
  EXPECT_DOUBLE_EQ(RegionStats{}.gflop_per_sec(), 0.0);
  EXPECT_DOUBLE_EQ(RegionStats{}.calls_per_sec(), 0.0);
}

#if SVELAT_METRICS_ENABLED

TEST_F(MetricsTest, RecordAccumulatesPerRegion) {
  record("alpha", 0.5, 100.0, 10.0);
  record("alpha", 1.5, 300.0, 30.0);
  record("beta", 0.25, 0.0, 0.0);

  const RegionStats a = get("alpha");
  EXPECT_EQ(a.calls, 2u);
  EXPECT_DOUBLE_EQ(a.seconds, 2.0);
  EXPECT_DOUBLE_EQ(a.bytes, 400.0);
  EXPECT_DOUBLE_EQ(a.flops, 40.0);
  EXPECT_EQ(get("beta").calls, 1u);
  EXPECT_EQ(get("never-ran").calls, 0u);
}

TEST_F(MetricsTest, SnapshotIsSortedByName) {
  record("zeta", 0.1, 0.0, 0.0);
  record("alpha", 0.1, 0.0, 0.0);
  record("mid", 0.1, 0.0, 0.0);
  const auto snap = snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "alpha");
  EXPECT_EQ(snap[1].first, "mid");
  EXPECT_EQ(snap[2].first, "zeta");
}

TEST_F(MetricsTest, ScopedTimerRecordsCallsAndModel) {
  {
    ScopedTimer t("scoped", 128.0, 64.0);
    t.add_bytes(72.0);
    t.add_flops(36.0);
  }
  const RegionStats s = get("scoped");
  EXPECT_EQ(s.calls, 1u);
  EXPECT_GE(s.seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.bytes, 200.0);
  EXPECT_DOUBLE_EQ(s.flops, 100.0);
}

TEST_F(MetricsTest, DisabledCollectionRecordsNothing) {
  set_enabled(false);
  EXPECT_FALSE(enabled());
  { ScopedTimer t("dark", 1.0, 1.0); }
  record("dark", 1.0, 1.0, 1.0);  // record() is also gated
  set_enabled(true);
  EXPECT_EQ(get("dark").calls, 0u);
}

TEST_F(MetricsTest, ResetClearsTheRegistry) {
  record("gone", 1.0, 1.0, 1.0);
  ASSERT_EQ(get("gone").calls, 1u);
  reset();
  EXPECT_EQ(get("gone").calls, 0u);
  EXPECT_TRUE(snapshot().empty());
}

TEST_F(MetricsTest, ReportNamesEveryRegion) {
  record("dhop", 0.5, 1e9, 2e9);
  record("cg_linalg", 0.25, 5e8, 1e8);
  const std::string text = report();
  EXPECT_NE(text.find("dhop"), std::string::npos);
  EXPECT_NE(text.find("cg_linalg"), std::string::npos);
  EXPECT_NE(text.find("GB/s"), std::string::npos);
  EXPECT_NE(text.find("GFLOP/s"), std::string::npos);
}

TEST_F(MetricsTest, JsonReportCarriesTheSchemaFields) {
  record("dhop", 0.5, 1e9, 2e9);
  const std::string json = report_json();
  for (const char* field : {"\"regions\"", "\"name\"", "\"calls\"", "\"seconds\"",
                            "\"bytes\"", "\"flops\"", "\"gb_per_sec\"",
                            "\"gflop_per_sec\"", "\"dhop\""})
    EXPECT_NE(json.find(field), std::string::npos) << "missing " << field;
}

#else  // SVELAT_METRICS_DISABLED builds

TEST_F(MetricsTest, CompiledOutTimerIsInert) {
  EXPECT_FALSE(enabled());
  set_enabled(true);  // cannot re-arm a compiled-out build
  EXPECT_FALSE(enabled());
  { ScopedTimer t("inert", 1.0, 1.0); }
  EXPECT_EQ(get("inert").calls, 0u);
}

#endif

}  // namespace
}  // namespace svelat::metrics
