// Unit tests for the layout-independent counter-based RNG.
#include "support/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace svelat {
namespace {

TEST(SiteRNG, DeterministicPerKey) {
  SiteRNG a(42), b(42);
  for (std::uint64_t site = 0; site < 16; ++site) {
    for (std::uint64_t slot = 0; slot < 8; ++slot) {
      EXPECT_EQ(a.bits(site, slot), b.bits(site, slot));
      EXPECT_EQ(a.gaussian(site, slot), b.gaussian(site, slot));
    }
  }
}

TEST(SiteRNG, SeedChangesStream) {
  SiteRNG a(1), b(2);
  unsigned equal = 0;
  for (std::uint64_t site = 0; site < 64; ++site)
    if (a.bits(site, 0) == b.bits(site, 0)) ++equal;
  EXPECT_EQ(equal, 0u);
}

TEST(SiteRNG, KeysDecorrelated) {
  // Different (site, slot) keys give distinct draws; collisions in 64-bit
  // space over a few thousand keys would indicate broken mixing.
  SiteRNG rng(7);
  std::set<std::uint64_t> seen;
  for (std::uint64_t site = 0; site < 64; ++site)
    for (std::uint64_t slot = 0; slot < 64; ++slot) seen.insert(rng.bits(site, slot));
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(SiteRNG, UniformInUnitInterval) {
  SiteRNG rng(3);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform(static_cast<std::uint64_t>(i), 0);
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);  // mean of U(0,1)
}

TEST(SiteRNG, UniformRange) {
  SiteRNG rng(5);
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform(static_cast<std::uint64_t>(i), 1, -2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(SiteRNG, GaussianMoments) {
  SiteRNG rng(11);
  const int n = 40000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(static_cast<std::uint64_t>(i), 0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(SiteRNG, GaussianIndependentOfUniformSlots) {
  // gaussian(slot) must not alias uniform(slot) bit streams.
  SiteRNG rng(13);
  EXPECT_NE(rng.gaussian(0, 0), rng.uniform(0, 0));
  EXPECT_NE(rng.gaussian(5, 2), rng.gaussian(5, 3));
}

}  // namespace
}  // namespace svelat
