// Unit tests for the binary16 software float.
#include "support/half.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace svelat {
namespace {

TEST(Half, ZeroRoundtrip) {
  EXPECT_EQ(half(0.0f).bits(), 0x0000u);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(float(half(0.0f)), 0.0f);
  EXPECT_TRUE(half(0.0f).is_zero());
  EXPECT_TRUE(half(-0.0f).is_zero());
  EXPECT_TRUE(half(-0.0f).signbit());
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(half(1.0f).bits(), 0x3c00u);
  EXPECT_EQ(half(-1.0f).bits(), 0xbc00u);
  EXPECT_EQ(half(2.0f).bits(), 0x4000u);
  EXPECT_EQ(half(0.5f).bits(), 0x3800u);
  EXPECT_EQ(half(65504.0f).bits(), 0x7bffu);  // largest finite
  EXPECT_EQ(half(0.0000610352f).bits(), 0x0400u);  // smallest normal 2^-14
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(half(65520.0f).is_inf());  // first value that rounds to inf
  EXPECT_TRUE(half(1.0e6f).is_inf());
  EXPECT_TRUE(half(-1.0e6f).is_inf());
  EXPECT_TRUE(half(-1.0e6f).signbit());
  EXPECT_FALSE(half(65504.0f).is_inf());
  // 65519 rounds down to 65504 (ties and below go to max finite).
  EXPECT_EQ(half(65519.0f).bits(), 0x7bffu);
}

TEST(Half, SubnormalRange) {
  // Smallest positive subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(half(tiny).bits(), 0x0001u);
  EXPECT_FLOAT_EQ(float(half(tiny)), tiny);
  // Half of that rounds to zero (ties-to-even at bit pattern 0).
  EXPECT_EQ(half(std::ldexp(1.0f, -26)).bits(), 0x0000u);
  // A mid-range subnormal roundtrips.
  const float sub = std::ldexp(1.0f, -20);
  EXPECT_FLOAT_EQ(float(half(sub)), sub);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even -> 1.0.
  EXPECT_EQ(half(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00u);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even -> 1+2^-9.
  EXPECT_EQ(half(1.0f + 3 * std::ldexp(1.0f, -11)).bits(), 0x3c02u);
  // Clearly above the halfway point (1 + 1.5*2^-11) rounds up.
  EXPECT_EQ(half(1.0f + std::ldexp(3.0f, -12)).bits(), 0x3c01u);
}

TEST(Half, MantissaCarryIntoExponent) {
  // 2047/1024 rounds up to 2.0 (mantissa overflow increments exponent).
  EXPECT_EQ(half(2.0f - std::ldexp(1.0f, -11)).bits(), 0x4000u);
}

TEST(Half, NanPropagation) {
  const half n(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(n.is_nan());
  EXPECT_TRUE(std::isnan(float(n)));
  EXPECT_FALSE(half::infinity().is_nan());
  EXPECT_TRUE(half::infinity().is_inf());
}

TEST(Half, InfinityRoundtrip) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(float(half(inf)), inf);
  EXPECT_EQ(float(half(-inf)), -inf);
}

TEST(Half, ExhaustiveRoundtripThroughFloat) {
  // Every finite half value must roundtrip bit-exactly through float.
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const half h = half::from_bits(static_cast<std::uint16_t>(b));
    if (h.is_nan()) continue;  // NaN payloads may legally change
    const half back{float(h)};
    EXPECT_EQ(back.bits(), h.bits()) << "bits=" << b;
  }
}

TEST(Half, Arithmetic) {
  EXPECT_EQ(float(half(1.5f) + half(2.25f)), 3.75f);
  EXPECT_EQ(float(half(3.0f) * half(0.5f)), 1.5f);
  EXPECT_EQ(float(half(1.0f) - half(4.0f)), -3.0f);
  EXPECT_EQ(float(half(1.0f) / half(4.0f)), 0.25f);
  EXPECT_EQ(float(-half(2.0f)), -2.0f);
}

TEST(Half, Comparisons) {
  EXPECT_LT(half(1.0f), half(2.0f));
  EXPECT_GT(half(-1.0f), half(-2.0f));
  EXPECT_EQ(half(0.0f), half(-0.0f));  // IEEE: +0 == -0
  EXPECT_LE(half(1.0f), half(1.0f));
}

TEST(Half, ConversionErrorBounded) {
  // Relative conversion error of normal values is at most 2^-11.
  for (float f : {0.1f, 0.3f, 1.7f, 123.456f, 1000.0f, 3.14159f}) {
    const float back = float(half(f));
    EXPECT_NEAR(back, f, std::abs(f) * 0x1.0p-11f + 1e-12f) << f;
  }
}

}  // namespace
}  // namespace svelat
