// Real-arithmetic intrinsic tests.
#include <gtest/gtest.h>

#include <cmath>

#include "sve/sve.h"
#include "sve_test_util.h"

namespace svelat::sve {
namespace {

using testing::make_reg;
using testing::VLTest;

class ArithTest : public VLTest {};

TEST_P(ArithTest, DupBroadcasts) {
  const svfloat64_t v = svdup_f64(3.25);
  for (unsigned i = 0; i < lanes<double>(); ++i) EXPECT_EQ(v.lane[i], 3.25);
}

TEST_P(ArithTest, IndexProducesArithmeticSequence) {
  const auto v = svindex<std::uint64_t>(10, 3);
  for (unsigned i = 0; i < lanes<std::uint64_t>(); ++i)
    EXPECT_EQ(v.lane[i], 10 + 3 * static_cast<std::uint64_t>(i));
}

TEST_P(ArithTest, BinaryOpsLanewise) {
  const auto a = make_reg<double>(1);
  const auto b = make_reg<double>(2);
  const svbool_t pg = svptrue_b64();
  const auto sum = svadd_x(pg, a, b);
  const auto dif = svsub_x(pg, a, b);
  const auto prd = svmul_x(pg, a, b);
  const auto mx = svmax_x(pg, a, b);
  const auto mn = svmin_x(pg, a, b);
  for (unsigned i = 0; i < lanes<double>(); ++i) {
    EXPECT_EQ(sum.lane[i], a.lane[i] + b.lane[i]) << i;
    EXPECT_EQ(dif.lane[i], a.lane[i] - b.lane[i]) << i;
    EXPECT_EQ(prd.lane[i], a.lane[i] * b.lane[i]) << i;
    EXPECT_EQ(mx.lane[i], std::max(a.lane[i], b.lane[i])) << i;
    EXPECT_EQ(mn.lane[i], std::min(a.lane[i], b.lane[i])) << i;
  }
}

TEST_P(ArithTest, DivAndSqrt) {
  const svbool_t pg = svptrue_b64();
  const auto a = svdup_f64(9.0);
  const auto b = svdup_f64(4.0);
  const auto q = svdiv_x(pg, a, b);
  const auto s = svsqrt_x(pg, a);
  for (unsigned i = 0; i < lanes<double>(); ++i) {
    EXPECT_DOUBLE_EQ(q.lane[i], 2.25);
    EXPECT_DOUBLE_EQ(s.lane[i], 3.0);
  }
}

TEST_P(ArithTest, MergePredicationKeepsFirstOperand) {
  const auto a = svdup_f64(1.0);
  const auto b = svdup_f64(2.0);
  const auto r = svadd_m(svwhilelt_b64(0, 1), a, b);
  EXPECT_EQ(r.lane[0], 3.0);
  for (unsigned i = 1; i < lanes<double>(); ++i) EXPECT_EQ(r.lane[i], 1.0) << i;
}

TEST_P(ArithTest, ZeroPredicationZeroesInactive) {
  const auto a = svdup_f64(1.0);
  const auto b = svdup_f64(2.0);
  const auto r = svadd_z(svwhilelt_b64(0, 1), a, b);
  EXPECT_EQ(r.lane[0], 3.0);
  for (unsigned i = 1; i < lanes<double>(); ++i) EXPECT_EQ(r.lane[i], 0.0) << i;
}

TEST_P(ArithTest, UnaryOps) {
  const auto a = make_reg<double>(3);
  const svbool_t pg = svptrue_b64();
  const auto neg = svneg_x(pg, a);
  const auto abs = svabs_x(pg, a);
  for (unsigned i = 0; i < lanes<double>(); ++i) {
    EXPECT_EQ(neg.lane[i], -a.lane[i]);
    EXPECT_EQ(abs.lane[i], std::abs(a.lane[i]));
  }
}

TEST_P(ArithTest, FusedMultiplyFamily) {
  const auto acc = make_reg<double>(4);
  const auto a = make_reg<double>(5);
  const auto b = make_reg<double>(6);
  const svbool_t pg = svptrue_b64();
  const auto mla = svmla_x(pg, acc, a, b);
  const auto mls = svmls_x(pg, acc, a, b);
  const auto nmla = svnmla_x(pg, acc, a, b);
  const auto nmls = svnmls_x(pg, acc, a, b);
  for (unsigned i = 0; i < lanes<double>(); ++i) {
    const double z = acc.lane[i], p = a.lane[i] * b.lane[i];
    EXPECT_DOUBLE_EQ(mla.lane[i], z + p) << i;
    EXPECT_DOUBLE_EQ(mls.lane[i], z - p) << i;
    EXPECT_DOUBLE_EQ(nmla.lane[i], -z - p) << i;
    EXPECT_DOUBLE_EQ(nmls.lane[i], -z + p) << i;
  }
}

TEST_P(ArithTest, FmlaInactiveKeepsAccumulator) {
  const auto acc = svdup_f64(10.0);
  const auto a = svdup_f64(2.0);
  const auto b = svdup_f64(3.0);
  const auto r = svmla_x(svwhilelt_b64(0, 1), acc, a, b);
  EXPECT_EQ(r.lane[0], 16.0);
  for (unsigned i = 1; i < lanes<double>(); ++i) EXPECT_EQ(r.lane[i], 10.0);
}

TEST_P(ArithTest, SelMixesByPredicate) {
  const auto a = svdup_f64(1.0);
  const auto b = svdup_f64(-1.0);
  const auto r = svsel(svwhilelt_b64(0, 2), a, b);
  for (unsigned i = 0; i < lanes<double>(); ++i)
    EXPECT_EQ(r.lane[i], i < 2u ? 1.0 : -1.0) << i;
}

TEST_P(ArithTest, FloatLanes) {
  const auto a = make_reg<float>(7);
  const auto b = make_reg<float>(8);
  const auto r = svmul_x(svptrue_b32(), a, b);
  for (unsigned i = 0; i < lanes<float>(); ++i)
    EXPECT_EQ(r.lane[i], a.lane[i] * b.lane[i]) << i;
}

TEST_P(ArithTest, HalfLanes) {
  const auto a = svdup_f16(half(1.5f));
  const auto b = svdup_f16(half(2.0f));
  const auto r = svadd_x(svptrue_b16(), a, b);
  for (unsigned i = 0; i < lanes<half>(); ++i) EXPECT_EQ(float(r.lane[i]), 3.5f) << i;
}

TEST_P(ArithTest, IntegerOps) {
  const auto a = svindex<std::uint64_t>(0, 1);
  const auto b = svdup<std::uint64_t>(5);
  const auto sum = svadd_int_x(svptrue_b64(), a, b);
  const auto shl = svlsl_int_x(svptrue_b64(), a, 2);
  for (unsigned i = 0; i < lanes<std::uint64_t>(); ++i) {
    EXPECT_EQ(sum.lane[i], i + 5u);
    EXPECT_EQ(shl.lane[i], static_cast<std::uint64_t>(i) << 2);
  }
}

TEST_P(ArithTest, Compares) {
  const auto a = svindex<std::uint64_t>(0, 1);
  const auto b = svdup<std::uint64_t>(2);
  const svbool_t pg = svptrue_b64();
  const svbool_t lt = svcmplt(pg, a, b);
  const svbool_t eq = svcmpeq(pg, a, b);
  const svbool_t gt = svcmpgt(pg, a, b);
  for (unsigned i = 0; i < lanes<std::uint64_t>(); ++i) {
    EXPECT_EQ(detail::pred_elem<std::uint64_t>(lt, i), i < 2u) << i;
    EXPECT_EQ(detail::pred_elem<std::uint64_t>(eq, i), i == 2u) << i;
    EXPECT_EQ(detail::pred_elem<std::uint64_t>(gt, i), i > 2u) << i;
  }
}

TEST_P(ArithTest, InactiveStorageAboveVLIsZero) {
  // Lanes beyond the configured VL must never carry stale values.
  const auto v = svdup_f64(9.0);
  for (unsigned i = lanes<double>(); i < svfloat64_t::kMaxLanes; ++i)
    EXPECT_EQ(v.lane[i], 0.0) << i;
}

INSTANTIATE_TEST_SUITE_P(AllVL, ArithTest,
                         ::testing::ValuesIn(testing::all_vector_lengths()));

}  // namespace
}  // namespace svelat::sve
