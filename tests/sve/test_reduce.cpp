// Horizontal reduction tests.
#include <gtest/gtest.h>

#include "sve/sve.h"
#include "sve_test_util.h"

namespace svelat::sve {
namespace {

using testing::VLTest;

class ReduceTest : public VLTest {};

TEST_P(ReduceTest, AddvSumsActiveLanes) {
  svfloat64_t a{};
  const unsigned n = lanes<double>();
  double expect = 0.0;
  for (unsigned i = 0; i < n; ++i) {
    a.lane[i] = 1.0 + i;
    expect += 1.0 + i;
  }
  EXPECT_DOUBLE_EQ(svaddv(svptrue_b64(), a), expect);
}

TEST_P(ReduceTest, AddvRespectsPredicate) {
  svfloat64_t a = svdup_f64(2.0);
  const unsigned active = std::min(3u, lanes<double>());
  EXPECT_DOUBLE_EQ(svaddv(svwhilelt_b64(0, 3), a), 2.0 * active);
  EXPECT_DOUBLE_EQ(svaddv(svpfalse_b(), a), 0.0);
}

TEST_P(ReduceTest, MaxvMinv) {
  svfloat64_t a{};
  const unsigned n = lanes<double>();
  for (unsigned i = 0; i < n; ++i) a.lane[i] = (i % 2 == 0) ? -1.0 * i : 0.5 * i;
  double mx = a.lane[0], mn = a.lane[0];
  for (unsigned i = 1; i < n; ++i) {
    mx = std::max(mx, a.lane[i]);
    mn = std::min(mn, a.lane[i]);
  }
  EXPECT_DOUBLE_EQ(svmaxv(svptrue_b64(), a), mx);
  EXPECT_DOUBLE_EQ(svminv(svptrue_b64(), a), mn);
}

TEST_P(ReduceTest, MaxvPredicatedIgnoresInactive) {
  svfloat64_t a{};
  const unsigned n = lanes<double>();
  for (unsigned i = 0; i < n; ++i) a.lane[i] = static_cast<double>(i);
  // Only lane 0 active: max is lane 0 even though later lanes are larger.
  EXPECT_DOUBLE_EQ(svmaxv(svwhilelt_b64(0, 1), a), 0.0);
}

TEST_P(ReduceTest, FloatAddv) {
  svfloat32_t a{};
  const unsigned n = lanes<float>();
  float expect = 0.0f;
  for (unsigned i = 0; i < n; ++i) {
    a.lane[i] = 0.25f;
    expect += 0.25f;
  }
  EXPECT_FLOAT_EQ(svaddv(svptrue_b32(), a), expect);
}

INSTANTIATE_TEST_SUITE_P(AllVL, ReduceTest,
                         ::testing::ValuesIn(testing::all_vector_lengths()));

}  // namespace
}  // namespace svelat::sve
