// FCMLA / FCADD tests: the complex-arithmetic core of the paper (Sec. III-D).
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "support/aligned.h"
#include "sve/sve.h"
#include "sve_test_util.h"

namespace svelat::sve {
namespace {

using cplx = std::complex<double>;
using testing::VLTest;

class ComplexTest : public VLTest {};

/// Pack complex values into a register with interleaved (re, im) layout.
svfloat64_t pack(const std::vector<cplx>& zs) {
  svfloat64_t r{};
  for (unsigned i = 0; i < zs.size() && 2 * i + 1 < svfloat64_t::kMaxLanes; ++i) {
    r.lane[2 * i] = zs[i].real();
    r.lane[2 * i + 1] = zs[i].imag();
  }
  return r;
}

cplx unpack(const svfloat64_t& v, unsigned i) { return {v.lane[2 * i], v.lane[2 * i + 1]}; }

std::vector<cplx> test_values(unsigned n, int tag) {
  std::vector<cplx> zs(n);
  for (unsigned i = 0; i < n; ++i)
    zs[i] = cplx(0.5 * tag + i, -1.25 * tag + 0.5 * i);
  return zs;
}

TEST_P(ComplexTest, FcmlaPairImplementsComplexMultiply) {
  // z = x * y by concatenating rotations 90 and 0 from a zero accumulator
  // (paper Eq. (2) and the Sec. IV-C listing).
  const unsigned pairs = lanes<double>() / 2;
  const auto xs = test_values(pairs, 1);
  const auto ys = test_values(pairs, 2);
  const svbool_t pg = svptrue_b64();
  const svfloat64_t x = pack(xs), y = pack(ys);
  svfloat64_t z = svcmla_x(pg, svdup_f64(0.), x, y, 90);
  z = svcmla_x(pg, z, x, y, 0);
  for (unsigned i = 0; i < pairs; ++i) {
    const cplx expect = xs[i] * ys[i];
    EXPECT_DOUBLE_EQ(unpack(z, i).real(), expect.real()) << i;
    EXPECT_DOUBLE_EQ(unpack(z, i).imag(), expect.imag()) << i;
  }
}

TEST_P(ComplexTest, FcmlaRotationOrderIrrelevant) {
  const unsigned pairs = lanes<double>() / 2;
  const auto xs = test_values(pairs, 3);
  const auto ys = test_values(pairs, 4);
  const svbool_t pg = svptrue_b64();
  const svfloat64_t x = pack(xs), y = pack(ys);
  svfloat64_t z1 = svcmla_x(pg, svdup_f64(0.), x, y, 90);
  z1 = svcmla_x(pg, z1, x, y, 0);
  svfloat64_t z2 = svcmla_x(pg, svdup_f64(0.), x, y, 0);
  z2 = svcmla_x(pg, z2, x, y, 90);
  for (unsigned i = 0; i < lanes<double>(); ++i)
    EXPECT_DOUBLE_EQ(z1.lane[i], z2.lane[i]) << i;
}

TEST_P(ComplexTest, FcmlaConjugateMultiply) {
  // z = conj(x) * y via rotations 0 and 270 (paper Eq. (2), asterisk case).
  const unsigned pairs = lanes<double>() / 2;
  const auto xs = test_values(pairs, 5);
  const auto ys = test_values(pairs, 6);
  const svbool_t pg = svptrue_b64();
  const svfloat64_t x = pack(xs), y = pack(ys);
  svfloat64_t z = svcmla_x(pg, svdup_f64(0.), x, y, 0);
  z = svcmla_x(pg, z, x, y, 270);
  for (unsigned i = 0; i < pairs; ++i) {
    const cplx expect = std::conj(xs[i]) * ys[i];
    EXPECT_DOUBLE_EQ(unpack(z, i).real(), expect.real()) << i;
    EXPECT_DOUBLE_EQ(unpack(z, i).imag(), expect.imag()) << i;
  }
}

TEST_P(ComplexTest, FcmlaAccumulates) {
  // z += x*y on a non-zero accumulator.
  const unsigned pairs = lanes<double>() / 2;
  const auto xs = test_values(pairs, 7);
  const auto ys = test_values(pairs, 8);
  const auto zs = test_values(pairs, 9);
  const svbool_t pg = svptrue_b64();
  svfloat64_t z = pack(zs);
  z = svcmla_x(pg, z, pack(xs), pack(ys), 90);
  z = svcmla_x(pg, z, pack(xs), pack(ys), 0);
  for (unsigned i = 0; i < pairs; ++i) {
    const cplx expect = zs[i] + xs[i] * ys[i];
    EXPECT_DOUBLE_EQ(unpack(z, i).real(), expect.real()) << i;
    EXPECT_DOUBLE_EQ(unpack(z, i).imag(), expect.imag()) << i;
  }
}

TEST_P(ComplexTest, Fcmla180And270GiveSubtraction) {
  // rot 180 + rot 270 accumulate -(x*y).
  const unsigned pairs = lanes<double>() / 2;
  const auto xs = test_values(pairs, 10);
  const auto ys = test_values(pairs, 11);
  const auto zs = test_values(pairs, 12);
  const svbool_t pg = svptrue_b64();
  svfloat64_t z = pack(zs);
  z = svcmla_x(pg, z, pack(xs), pack(ys), 180);
  z = svcmla_x(pg, z, pack(xs), pack(ys), 270);
  for (unsigned i = 0; i < pairs; ++i) {
    // rot180: re -= xr*yr, im -= xr*yi; rot270: re += xi*yi, im -= xi*yr;
    // together exactly z - x*y.
    const cplx expect = zs[i] - xs[i] * ys[i];
    EXPECT_DOUBLE_EQ(unpack(z, i).real(), expect.real()) << i;
    EXPECT_DOUBLE_EQ(unpack(z, i).imag(), expect.imag()) << i;
  }
}

TEST_P(ComplexTest, FcaddAddsRotatedOperand) {
  const unsigned pairs = lanes<double>() / 2;
  const auto as = test_values(pairs, 13);
  const auto bs = test_values(pairs, 14);
  const svbool_t pg = svptrue_b64();
  const svfloat64_t r90 = svcadd_x(pg, pack(as), pack(bs), 90);
  const svfloat64_t r270 = svcadd_x(pg, pack(as), pack(bs), 270);
  for (unsigned i = 0; i < pairs; ++i) {
    const cplx e90 = as[i] + cplx(0, 1) * bs[i];
    const cplx e270 = as[i] - cplx(0, 1) * bs[i];
    EXPECT_DOUBLE_EQ(unpack(r90, i).real(), e90.real()) << i;
    EXPECT_DOUBLE_EQ(unpack(r90, i).imag(), e90.imag()) << i;
    EXPECT_DOUBLE_EQ(unpack(r270, i).real(), e270.real()) << i;
    EXPECT_DOUBLE_EQ(unpack(r270, i).imag(), e270.imag()) << i;
  }
}

TEST_P(ComplexTest, PredicationGuardsPerElement) {
  // Only the first complex pair active: remaining accumulator lanes unchanged.
  const unsigned nd = lanes<double>();
  const auto xs = test_values(nd / 2, 15);
  const auto ys = test_values(nd / 2, 16);
  svfloat64_t acc = svdup_f64(42.0);
  const svbool_t pg = svwhilelt_b64(0, 2);
  acc = svcmla_x(pg, acc, pack(xs), pack(ys), 90);
  acc = svcmla_x(pg, acc, pack(xs), pack(ys), 0);
  const cplx expect = cplx(42.0, 42.0) + xs[0] * ys[0];
  EXPECT_DOUBLE_EQ(acc.lane[0], expect.real());
  EXPECT_DOUBLE_EQ(acc.lane[1], expect.imag());
  for (unsigned i = 2; i < nd; ++i) EXPECT_EQ(acc.lane[i], 42.0) << i;
}

TEST_P(ComplexTest, FloatPrecision) {
  const unsigned pairs = lanes<float>() / 2;
  svfloat32_t x{}, y{};
  for (unsigned i = 0; i < pairs; ++i) {
    x.lane[2 * i] = 1.0f + i;
    x.lane[2 * i + 1] = 0.5f * i;
    y.lane[2 * i] = 2.0f - i;
    y.lane[2 * i + 1] = -0.25f * i;
  }
  const svbool_t pg = svptrue_b32();
  svfloat32_t z = svcmla_x(pg, svdup_f32(0.f), x, y, 90);
  z = svcmla_x(pg, z, x, y, 0);
  for (unsigned i = 0; i < pairs; ++i) {
    const std::complex<float> xi(x.lane[2 * i], x.lane[2 * i + 1]);
    const std::complex<float> yi(y.lane[2 * i], y.lane[2 * i + 1]);
    const std::complex<float> e = xi * yi;
    EXPECT_FLOAT_EQ(z.lane[2 * i], e.real()) << i;
    EXPECT_FLOAT_EQ(z.lane[2 * i + 1], e.imag()) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVL, ComplexTest,
                         ::testing::ValuesIn(testing::all_vector_lengths()));

}  // namespace
}  // namespace svelat::sve
