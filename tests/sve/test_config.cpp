// Vector-length configuration tests.
#include <gtest/gtest.h>

#include "sve/sve.h"
#include "sve_test_util.h"

namespace svelat::sve {
namespace {

TEST(SveConfig, ValidLengths) {
  for (unsigned bits : testing::all_vector_lengths()) {
    EXPECT_TRUE(is_valid_vector_length(bits)) << bits;
  }
  EXPECT_EQ(testing::all_vector_lengths().size(), 16u);
}

TEST(SveConfig, InvalidLengths) {
  EXPECT_FALSE(is_valid_vector_length(0));
  EXPECT_FALSE(is_valid_vector_length(64));
  EXPECT_FALSE(is_valid_vector_length(192));  // not a multiple of 128
  EXPECT_FALSE(is_valid_vector_length(2176));
  EXPECT_FALSE(is_valid_vector_length(100));
}

TEST(SveConfig, SetAndQuery) {
  VLGuard guard(256);
  EXPECT_EQ(vector_bits(), 256u);
  EXPECT_EQ(vector_bytes(), 32u);
  EXPECT_EQ(lanes<double>(), 4u);
  EXPECT_EQ(lanes<float>(), 8u);
  EXPECT_EQ(lanes<half>(), 16u);
}

TEST(SveConfig, VLGuardRestores) {
  set_vector_length(512);
  {
    VLGuard guard(1024);
    EXPECT_EQ(vector_bits(), 1024u);
    {
      VLGuard inner(128);
      EXPECT_EQ(vector_bits(), 128u);
    }
    EXPECT_EQ(vector_bits(), 1024u);
  }
  EXPECT_EQ(vector_bits(), 512u);
}

TEST(SveConfig, LaneCountsScaleWithVL) {
  for (unsigned bits : testing::all_vector_lengths()) {
    VLGuard guard(bits);
    EXPECT_EQ(lanes<double>() * 64, bits);
    EXPECT_EQ(lanes<float>() * 32, bits);
    EXPECT_EQ(lanes<std::uint16_t>() * 16, bits);
  }
}

}  // namespace
}  // namespace svelat::sve
