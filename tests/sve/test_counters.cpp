// Instruction-counter and tracer tests (the ArmIE-substitute machinery).
#include <gtest/gtest.h>

#include "support/aligned.h"
#include "sve/sve.h"
#include "sve_test_util.h"

namespace svelat::sve {
namespace {

TEST(Counters, ScopeCapturesDelta) {
  VLGuard vl(512);
  CounterScope scope;
  const svbool_t pg = svptrue_b64();
  const svfloat64_t a = svdup_f64(1.0);
  const svfloat64_t b = svdup_f64(2.0);
  (void)svmul_x(pg, a, b);
  (void)svmul_x(pg, a, b);
  (void)svadd_x(pg, a, b);
  const InsnCounters d = scope.delta();
  EXPECT_EQ(d[InsnClass::kFMul], 2u);
  EXPECT_EQ(d[InsnClass::kFAddSub], 1u);
  EXPECT_EQ(d[InsnClass::kDup], 2u);
  EXPECT_EQ(d[InsnClass::kPredicate], 1u);
  EXPECT_EQ(d.total(), 6u);
}

TEST(Counters, NestedScopes) {
  VLGuard vl(256);
  CounterScope outer;
  (void)svdup_f64(0.0);
  {
    CounterScope inner;
    (void)svdup_f64(1.0);
    EXPECT_EQ(inner.delta().total(), 1u);
  }
  EXPECT_EQ(outer.delta().total(), 2u);
}

TEST(Counters, MemoryAndComputeBuckets) {
  VLGuard vl(512);
  AlignedVector<double> buf(lanes<double>(), 1.0);
  CounterScope scope;
  const svbool_t pg = svptrue_b64();
  const svfloat64_t v = svld1(pg, buf.data());
  const svfloat64_t w = svcmla_x(pg, v, v, v, 90);
  svst1(pg, buf.data(), w);
  const InsnCounters d = scope.delta();
  EXPECT_EQ(d.memory_insns(), 2u);
  EXPECT_EQ(d.flops_insns(), 1u);
  EXPECT_EQ(d[InsnClass::kFCmla], 1u);
}

TEST(Counters, StructuredLoadsCountedSeparately) {
  VLGuard vl(512);
  AlignedVector<double> buf(2 * lanes<double>(), 1.0);
  CounterScope scope;
  const svbool_t pg = svptrue_b64();
  const auto t = svld2(pg, buf.data());
  svst2(pg, buf.data(), t);
  const InsnCounters d = scope.delta();
  EXPECT_EQ(d[InsnClass::kStructLoad], 1u);
  EXPECT_EQ(d[InsnClass::kStructStore], 1u);
  EXPECT_EQ(d[InsnClass::kLoad], 0u);
}

TEST(Counters, ReportListsNonZeroClasses) {
  VLGuard vl(512);
  CounterScope scope;
  (void)svdup_f64(1.0);
  const std::string rep = scope.delta().report();
  EXPECT_NE(rep.find("dup"), std::string::npos);
  EXPECT_NE(rep.find("total"), std::string::npos);
  EXPECT_EQ(rep.find("fcmla"), std::string::npos);  // untouched class absent
}

TEST(Tracer, CapturesMnemonics) {
  VLGuard vl(512);
  Tracer tracer;
  {
    TraceScope scope(tracer);
    const svbool_t pg = svptrue_b64();
    const svfloat64_t a = svdup_f64(1.0);
    (void)svcmla_x(pg, a, a, a, 90);
  }
  ASSERT_EQ(tracer.lines().size(), 3u);
  EXPECT_NE(tracer.lines()[0].find("ptrue"), std::string::npos);
  EXPECT_NE(tracer.lines()[1].find("dup"), std::string::npos);
  EXPECT_NE(tracer.lines()[2].find("fcmla"), std::string::npos);
  EXPECT_NE(tracer.lines()[2].find("#90"), std::string::npos);
}

TEST(Tracer, NoTracingAfterScopeEnds) {
  VLGuard vl(512);
  Tracer tracer;
  {
    TraceScope scope(tracer);
    (void)svdup_f64(1.0);
  }
  (void)svdup_f64(2.0);  // not traced
  EXPECT_EQ(tracer.lines().size(), 1u);
}

TEST(Tracer, FoldedListingCollapsesLoops) {
  VLGuard vl(128);
  Tracer tracer;
  {
    TraceScope scope(tracer);
    for (int i = 0; i < 4; ++i) (void)svdup_f64(1.0);
  }
  const std::string folded = tracer.folded_listing();
  EXPECT_NE(folded.find("(x4)"), std::string::npos);
  // Exactly one numbered line.
  EXPECT_EQ(folded.find("   2  "), std::string::npos);
}

TEST(Tracer, ElementSuffixReflectsType) {
  VLGuard vl(512);
  Tracer tracer;
  {
    TraceScope scope(tracer);
    (void)svdup_f64(1.0);
    (void)svdup_f32(1.0f);
    (void)svdup_f16(half(1.0f));
  }
  EXPECT_NE(tracer.lines()[0].find(".d"), std::string::npos);
  EXPECT_NE(tracer.lines()[1].find(".s"), std::string::npos);
  EXPECT_NE(tracer.lines()[2].find(".h"), std::string::npos);
}

}  // namespace
}  // namespace svelat::sve
