// Precision-conversion (FCVT) tests.
#include <gtest/gtest.h>

#include "sve/sve.h"
#include "sve_test_util.h"

namespace svelat::sve {
namespace {

using testing::VLTest;

class CvtTest : public VLTest {};

TEST_P(CvtTest, NarrowDoubleToSinglePlacesEvenLanes) {
  svfloat64_t a{};
  const unsigned nd = lanes<double>();
  for (unsigned i = 0; i < nd; ++i) a.lane[i] = 1.5 * i;
  const svfloat32_t r = svcvt_f32_f64_x(svptrue_b64(), a);
  for (unsigned i = 0; i < nd; ++i) {
    EXPECT_EQ(r.lane[2 * i], static_cast<float>(1.5 * i)) << i;
    EXPECT_EQ(r.lane[2 * i + 1], 0.0f) << i;  // odd sub-lanes zeroed
  }
}

TEST_P(CvtTest, WidenSingleToDoubleReadsEvenLanes) {
  svfloat32_t a{};
  const unsigned nd = lanes<double>();
  for (unsigned i = 0; i < nd; ++i) a.lane[2 * i] = 0.25f * i;
  const svfloat64_t r = svcvt_f64_f32_x(svptrue_b64(), a);
  for (unsigned i = 0; i < nd; ++i) EXPECT_EQ(r.lane[i], 0.25 * i) << i;
}

TEST_P(CvtTest, DoubleSingleRoundtripExactForRepresentable) {
  svfloat64_t a{};
  const unsigned nd = lanes<double>();
  for (unsigned i = 0; i < nd; ++i) a.lane[i] = static_cast<double>(i) - 3.5;
  const svbool_t pg = svptrue_b64();
  const svfloat64_t back = svcvt_f64_f32_x(pg, svcvt_f32_f64_x(pg, a));
  for (unsigned i = 0; i < nd; ++i) EXPECT_EQ(back.lane[i], a.lane[i]) << i;
}

TEST_P(CvtTest, SingleHalfRoundtripExactForRepresentable) {
  svfloat32_t a{};
  const unsigned ns = lanes<float>();
  for (unsigned i = 0; i < ns; ++i) a.lane[i] = 0.5f * i - 2.0f;
  const svbool_t pg = svptrue_b32();
  const svfloat32_t back = svcvt_f32_f16_x(pg, svcvt_f16_f32_x(pg, a));
  for (unsigned i = 0; i < ns; ++i) EXPECT_EQ(back.lane[i], a.lane[i]) << i;
}

TEST_P(CvtTest, HalfConversionRounds) {
  svfloat32_t a{};
  a.lane[0] = 1.0f + 0x1.0p-11f;  // halfway between half(1.0) and next: ties even
  const svfloat16_t h = svcvt_f16_f32_x(svptrue_b32(), a);
  EXPECT_EQ(h.lane[0].bits(), 0x3c00u);
}

TEST_P(CvtTest, DoubleHalfDirect) {
  svfloat64_t a{};
  const unsigned nd = lanes<double>();
  for (unsigned i = 0; i < nd; ++i) a.lane[i] = 2.0 * i + 0.5;
  const svbool_t pg = svptrue_b64();
  const svfloat16_t h = svcvt_f16_f64_x(pg, a);
  for (unsigned i = 0; i < nd; ++i) {
    EXPECT_EQ(float(h.lane[4 * i]), 2.0f * i + 0.5f) << i;
  }
  const svfloat64_t back = svcvt_f64_f16_x(pg, h);
  for (unsigned i = 0; i < nd; ++i) EXPECT_EQ(back.lane[i], a.lane[i]) << i;
}

TEST_P(CvtTest, PredicatedConversionSkipsInactive) {
  svfloat64_t a{};
  const unsigned nd = lanes<double>();
  for (unsigned i = 0; i < nd; ++i) a.lane[i] = 7.0;
  const svfloat32_t r = svcvt_f32_f64_x(svwhilelt_b64(0, 1), a);
  EXPECT_EQ(r.lane[0], 7.0f);
  for (unsigned i = 1; i < nd; ++i) EXPECT_EQ(r.lane[2 * i], 0.0f) << i;
}

TEST_P(CvtTest, CompactionWithUzp1) {
  // Narrowing two full f64 registers and compacting with UZP1 yields one
  // full f32 register: the idiom Grid's precision change uses.
  const unsigned nd = lanes<double>();
  svfloat64_t a{}, b{};
  for (unsigned i = 0; i < nd; ++i) {
    a.lane[i] = 1.0 * i;
    b.lane[i] = 100.0 + i;
  }
  const svbool_t pg = svptrue_b64();
  const svfloat32_t ca = svcvt_f32_f64_x(pg, a);
  const svfloat32_t cb = svcvt_f32_f64_x(pg, b);
  const svfloat32_t packed = svuzp1(ca, cb);
  for (unsigned i = 0; i < nd; ++i) {
    EXPECT_EQ(packed.lane[i], static_cast<float>(i)) << i;
    EXPECT_EQ(packed.lane[nd + i], 100.0f + i) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVL, CvtTest,
                         ::testing::ValuesIn(testing::all_vector_lengths()));

}  // namespace
}  // namespace svelat::sve
