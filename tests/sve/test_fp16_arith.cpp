// Vectorized fp16 arithmetic (paper Sec. III-A: SVE supports 16-bit
// floating-point operations including arithmetic and conversion; the
// framework only *computes* in 32/64-bit, but the ISA layer must be
// complete).
#include <gtest/gtest.h>

#include "support/aligned.h"
#include "sve/sve.h"
#include "sve_test_util.h"

namespace svelat::sve {
namespace {

using testing::VLTest;

class Fp16Test : public VLTest {};

svfloat16_t make_h(float base, float step) {
  svfloat16_t r{};
  for (unsigned i = 0; i < lanes<half>(); ++i)
    r.lane[i] = half(base + step * static_cast<float>(i % 16));
  return r;
}

TEST_P(Fp16Test, LoadStoreRoundtrip) {
  const unsigned n = lanes<half>();
  AlignedVector<half> src(n), dst(n);
  for (unsigned i = 0; i < n; ++i) src[i] = half(0.25f * static_cast<float>(i) - 2.0f);
  const svbool_t pg = svptrue_b16();
  svst1(pg, dst.data(), svld1(pg, src.data()));
  for (unsigned i = 0; i < n; ++i) EXPECT_EQ(dst[i].bits(), src[i].bits()) << i;
}

TEST_P(Fp16Test, ArithmeticLanewise) {
  const svbool_t pg = svptrue_b16();
  const svfloat16_t a = make_h(1.0f, 0.5f);
  const svfloat16_t b = make_h(-2.0f, 0.25f);
  const svfloat16_t sum = svadd_x(pg, a, b);
  const svfloat16_t prod = svmul_x(pg, a, b);
  for (unsigned i = 0; i < lanes<half>(); ++i) {
    EXPECT_EQ(float(sum.lane[i]), float(a.lane[i] + b.lane[i])) << i;
    EXPECT_EQ(float(prod.lane[i]), float(a.lane[i] * b.lane[i])) << i;
  }
}

TEST_P(Fp16Test, FmlaRoundsPerStep) {
  // Our simulated FMLA rounds the product and the sum separately in the
  // lane type -- for fp16 that is observable: fmla != exact fma.
  const svbool_t pg = svptrue_b16();
  const svfloat16_t acc = svdup_f16(half(1.0f));
  const svfloat16_t a = svdup_f16(half(1.0f + 0x1.0p-10f));  // 1 + ulp
  const svfloat16_t r = svmla_x(pg, acc, a, a);
  // a*a rounds to 1 + 2^-9 in fp16; +1 gives exactly 2 + 2^-9.
  const float expect = float(half(float(half(1.0f + 0x1.0p-10f)) *
                                  float(half(1.0f + 0x1.0p-10f)))) +
                       1.0f;
  EXPECT_EQ(float(r.lane[0]), float(half(expect)));
}

TEST_P(Fp16Test, ComplexFcmlaF16) {
  // FCMLA supports fp16 pairs (paper Sec. III-D lists 16-bit complex
  // arithmetic).
  const svbool_t pg = svptrue_b16();
  svfloat16_t x{}, y{};
  const unsigned pairs = lanes<half>() / 2;
  for (unsigned i = 0; i < pairs; ++i) {
    x.lane[2 * i] = half(1.5f);
    x.lane[2 * i + 1] = half(-0.5f);
    y.lane[2 * i] = half(2.0f);
    y.lane[2 * i + 1] = half(0.25f);
  }
  svfloat16_t z = svcmla_x(pg, svdup_f16(half(0.0f)), x, y, 90);
  z = svcmla_x(pg, z, x, y, 0);
  // (1.5 - 0.5i)(2 + 0.25i) = 3.125 - 0.625i; all values f16-exact.
  for (unsigned i = 0; i < pairs; ++i) {
    EXPECT_EQ(float(z.lane[2 * i]), 3.125f) << i;
    EXPECT_EQ(float(z.lane[2 * i + 1]), -0.625f) << i;
  }
}

TEST_P(Fp16Test, PermutesOnHalfLanes) {
  const svfloat16_t a = make_h(0.0f, 1.0f);
  const svfloat16_t r = svrev(a);
  const unsigned n = lanes<half>();
  for (unsigned i = 0; i < n; ++i)
    EXPECT_EQ(r.lane[i].bits(), a.lane[n - 1 - i].bits()) << i;

  svuint16_t idx{};
  for (unsigned i = 0; i < n; ++i) idx.lane[i] = static_cast<std::uint16_t>(i ^ 1u);
  const svfloat16_t swapped = svtbl(a, idx);
  for (unsigned i = 0; i < n; ++i)
    EXPECT_EQ(swapped.lane[i].bits(), a.lane[i ^ 1u].bits()) << i;
}

TEST_P(Fp16Test, ReductionOnHalf) {
  const svbool_t pg = svptrue_b16();
  const svfloat16_t a = svdup_f16(half(0.5f));
  const half sum = svaddv(pg, a);
  EXPECT_EQ(float(sum), 0.5f * static_cast<float>(lanes<half>()));
}

INSTANTIATE_TEST_SUITE_P(AllVL, Fp16Test,
                         ::testing::ValuesIn(testing::all_vector_lengths()));

}  // namespace
}  // namespace svelat::sve
