// Shared helpers for SVE simulator tests.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sve/sve.h"

namespace svelat::sve::testing {

/// All legal SVE vector lengths.
inline std::vector<unsigned> all_vector_lengths() {
  std::vector<unsigned> vls;
  for (unsigned bits = kMinVectorBits; bits <= kMaxVectorBits; bits += kVectorBitsStep)
    vls.push_back(bits);
  return vls;
}

/// The subset the paper enables in Grid (Sec. V-B).
inline std::vector<unsigned> grid_vector_lengths() { return {128, 256, 512}; }

/// Deterministic lane fill: value depends on (tag, lane) only.
template <typename E>
inline svreg<E> make_reg(int tag) {
  svreg<E> r{};
  for (unsigned i = 0; i < svreg<E>::kMaxLanes; ++i)
    r.lane[i] = static_cast<E>(static_cast<double>((tag * 131 + static_cast<int>(i) * 7) % 23) -
                               11.0);
  return r;
}

/// Base fixture parameterized over the vector length.
class VLTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override { set_vector_length(GetParam()); }
  void TearDown() override { set_vector_length(512); }
};

}  // namespace svelat::sve::testing
