// Permutation intrinsic tests.
#include <gtest/gtest.h>

#include "sve/sve.h"
#include "sve_test_util.h"

namespace svelat::sve {
namespace {

using testing::VLTest;

class PermTest : public VLTest {};

svfloat64_t iota_reg(double base) {
  svfloat64_t r{};
  for (unsigned i = 0; i < lanes<double>(); ++i) r.lane[i] = base + i;
  return r;
}

TEST_P(PermTest, ExtSlidesWindow) {
  const unsigned n = lanes<double>();
  const svfloat64_t a = iota_reg(0.0);
  const svfloat64_t b = iota_reg(100.0);
  for (unsigned imm = 0; imm < n; ++imm) {
    const svfloat64_t r = svext(a, b, imm);
    for (unsigned i = 0; i < n; ++i) {
      const double expect = (i + imm < n) ? (i + imm) : (100.0 + (i + imm - n));
      EXPECT_EQ(r.lane[i], expect) << "imm=" << imm << " i=" << i;
    }
  }
}

TEST_P(PermTest, ExtByHalfSwapsHalves) {
  // EXT(a, a, n/2) rotates the vector by half: Grid's coarsest permute.
  const unsigned n = lanes<double>();
  if (n < 2) GTEST_SKIP();
  const svfloat64_t a = iota_reg(0.0);
  const svfloat64_t r = svext(a, a, n / 2);
  for (unsigned i = 0; i < n; ++i) EXPECT_EQ(r.lane[i], (i + n / 2) % n) << i;
}

TEST_P(PermTest, RevIsInvolution) {
  const svfloat64_t a = iota_reg(5.0);
  const svfloat64_t r = svrev(a);
  const unsigned n = lanes<double>();
  for (unsigned i = 0; i < n; ++i) EXPECT_EQ(r.lane[i], a.lane[n - 1 - i]);
  const svfloat64_t rr = svrev(r);
  for (unsigned i = 0; i < n; ++i) EXPECT_EQ(rr.lane[i], a.lane[i]);
}

TEST_P(PermTest, TblArbitraryPermutation) {
  const unsigned n = lanes<double>();
  const svfloat64_t a = iota_reg(0.0);
  svuint64_t idx{};
  for (unsigned i = 0; i < n; ++i) idx.lane[i] = (i * 3 + 1) % n;
  const svfloat64_t r = svtbl(a, idx);
  for (unsigned i = 0; i < n; ++i) EXPECT_EQ(r.lane[i], (i * 3 + 1) % n) << i;
}

TEST_P(PermTest, TblOutOfRangeGivesZero) {
  const svfloat64_t a = iota_reg(1.0);
  svuint64_t idx{};
  for (unsigned i = 0; i < lanes<double>(); ++i) idx.lane[i] = 1000;
  const svfloat64_t r = svtbl(a, idx);
  for (unsigned i = 0; i < lanes<double>(); ++i) EXPECT_EQ(r.lane[i], 0.0);
}

TEST_P(PermTest, TblPairSwap) {
  // Swapping adjacent pairs via TBL: the finest-grained Grid permute; for
  // complex data it exchanges neighbouring complex numbers.
  const unsigned n = lanes<double>();
  if (n < 4) GTEST_SKIP();
  const svfloat64_t a = iota_reg(0.0);
  svuint64_t idx{};
  for (unsigned i = 0; i < n; ++i) idx.lane[i] = i ^ 2u;  // swap pairs of pairs
  const svfloat64_t r = svtbl(a, idx);
  for (unsigned i = 0; i < n; ++i) {
    // When the lane count is not a multiple of 4 the top pair's partner is
    // out of range and TBL yields zero.
    const double expect = (i ^ 2u) < n ? static_cast<double>(i ^ 2u) : 0.0;
    EXPECT_EQ(r.lane[i], expect) << i;
  }
}

TEST_P(PermTest, ZipUnzipRoundtrip) {
  const unsigned n = lanes<double>();
  if (n < 2) GTEST_SKIP();
  const svfloat64_t a = iota_reg(0.0);
  const svfloat64_t b = iota_reg(100.0);
  const svfloat64_t lo = svzip1(a, b);
  const svfloat64_t hi = svzip2(a, b);
  // UZP of the zipped registers must recover the originals.
  const svfloat64_t ua = svuzp1(lo, hi);
  const svfloat64_t ub = svuzp2(lo, hi);
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_EQ(ua.lane[i], a.lane[i]) << i;
    EXPECT_EQ(ub.lane[i], b.lane[i]) << i;
  }
}

TEST_P(PermTest, ZipInterleavesHalves) {
  const unsigned n = lanes<double>();
  if (n < 2) GTEST_SKIP();
  const svfloat64_t a = iota_reg(0.0);
  const svfloat64_t b = iota_reg(100.0);
  const svfloat64_t lo = svzip1(a, b);
  for (unsigned i = 0; i < n / 2; ++i) {
    EXPECT_EQ(lo.lane[2 * i], a.lane[i]);
    EXPECT_EQ(lo.lane[2 * i + 1], b.lane[i]);
  }
}

TEST_P(PermTest, TrnPicksAlternating) {
  const unsigned n = lanes<double>();
  if (n < 2) GTEST_SKIP();
  const svfloat64_t a = iota_reg(0.0);
  const svfloat64_t b = iota_reg(100.0);
  const svfloat64_t t1 = svtrn1(a, b);
  const svfloat64_t t2 = svtrn2(a, b);
  for (unsigned i = 0; i < n / 2; ++i) {
    EXPECT_EQ(t1.lane[2 * i], a.lane[2 * i]);
    EXPECT_EQ(t1.lane[2 * i + 1], b.lane[2 * i]);
    EXPECT_EQ(t2.lane[2 * i], a.lane[2 * i + 1]);
    EXPECT_EQ(t2.lane[2 * i + 1], b.lane[2 * i + 1]);
  }
}

TEST_P(PermTest, DupLaneBroadcasts) {
  const svfloat64_t a = iota_reg(3.0);
  const unsigned n = lanes<double>();
  const svfloat64_t r = svdup_lane(a, n - 1);
  for (unsigned i = 0; i < n; ++i) EXPECT_EQ(r.lane[i], 3.0 + (n - 1)) << i;
}

TEST_P(PermTest, FloatTbl) {
  svfloat32_t a{};
  svuint32_t idx{};
  const unsigned n = lanes<float>();
  for (unsigned i = 0; i < n; ++i) {
    a.lane[i] = 2.0f * i;
    idx.lane[i] = n - 1 - i;
  }
  const svfloat32_t r = svtbl(a, idx);
  for (unsigned i = 0; i < n; ++i) EXPECT_EQ(r.lane[i], 2.0f * (n - 1 - i)) << i;
}

INSTANTIATE_TEST_SUITE_P(AllVL, PermTest,
                         ::testing::ValuesIn(testing::all_vector_lengths()));

}  // namespace
}  // namespace svelat::sve
