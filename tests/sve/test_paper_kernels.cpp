// The paper's Sec. IV code examples, verified against scalar references
// across all vector lengths and odd array sizes (predicated tails).
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "core/kernels.h"
#include "support/aligned.h"
#include "sve/sve.h"
#include "sve_test_util.h"

namespace svelat {
namespace {

using kernels::cplx;
using sve::testing::VLTest;

class PaperKernelTest : public VLTest {};

std::vector<double> real_data(std::size_t n, int tag) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 0.25 * static_cast<double>((tag * 31 + static_cast<int>(i) * 13) % 97) - 12.0;
  return v;
}

std::vector<cplx> cplx_data(std::size_t n, int tag) {
  const auto re = real_data(n, tag);
  const auto im = real_data(n, tag + 100);
  std::vector<cplx> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = {re[i], im[i]};
  return v;
}

TEST_P(PaperKernelTest, MultRealMatchesScalar) {
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                        std::size_t{2 * sve::lanes<double>() + 3}}) {
    const auto x = real_data(n, 1);
    const auto y = real_data(n, 2);
    std::vector<double> z(n, -1.0);
    kernels::mult_real_sve(n, x.data(), y.data(), z.data());
    for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(z[i], x[i] * y[i]) << n << ":" << i;
  }
}

TEST_P(PaperKernelTest, MultCplxAutovecMatchesScalar) {
  for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{33},
                        std::size_t{2 * sve::lanes<double>() + 1}}) {
    const auto x = cplx_data(n, 3);
    const auto y = cplx_data(n, 4);
    std::vector<cplx> expect(n), got(n);
    kernels::mult_cplx_scalar(n, x.data(), y.data(), expect.data());
    kernels::mult_cplx_autovec(n, x.data(), y.data(), got.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(got[i].real(), expect[i].real()) << n << ":" << i;
      EXPECT_DOUBLE_EQ(got[i].imag(), expect[i].imag()) << n << ":" << i;
    }
  }
}

TEST_P(PaperKernelTest, MultCplxAcleMatchesScalar) {
  for (std::size_t n : {std::size_t{1}, std::size_t{6}, std::size_t{40},
                        std::size_t{3 * sve::lanes<double>() / 2 + 1}}) {
    const auto x = cplx_data(n, 5);
    const auto y = cplx_data(n, 6);
    std::vector<cplx> expect(n), got(n);
    kernels::mult_cplx_scalar(n, x.data(), y.data(), expect.data());
    kernels::mult_cplx_acle(n, reinterpret_cast<const double*>(x.data()),
                            reinterpret_cast<const double*>(y.data()),
                            reinterpret_cast<double*>(got.data()));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(got[i].real(), expect[i].real()) << n << ":" << i;
      EXPECT_DOUBLE_EQ(got[i].imag(), expect[i].imag()) << n << ":" << i;
    }
  }
}

TEST_P(PaperKernelTest, MultCplxAcleFixedProcessesOneVector) {
  const std::size_t n = kernels::cplx_per_vector();
  const auto x = cplx_data(n, 7);
  const auto y = cplx_data(n, 8);
  std::vector<cplx> expect(n), got(n);
  kernels::mult_cplx_scalar(n, x.data(), y.data(), expect.data());
  kernels::mult_cplx_acle_fixed(reinterpret_cast<const double*>(x.data()),
                                reinterpret_cast<const double*>(y.data()),
                                reinterpret_cast<double*>(got.data()));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(got[i].real(), expect[i].real()) << i;
    EXPECT_DOUBLE_EQ(got[i].imag(), expect[i].imag()) << i;
  }
}

TEST_P(PaperKernelTest, AllStrategiesAgreeBitExactly) {
  // FCMLA and the real-arithmetic strategy compute the same expression
  // (products then add), so for these inputs the results are bit-identical.
  const std::size_t n = 24;
  const auto x = cplx_data(n, 9);
  const auto y = cplx_data(n, 10);
  std::vector<cplx> a(n), b(n);
  kernels::mult_cplx_autovec(n, x.data(), y.data(), a.data());
  kernels::mult_cplx_acle(n, reinterpret_cast<const double*>(x.data()),
                          reinterpret_cast<const double*>(y.data()),
                          reinterpret_cast<double*>(b.data()));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a[i].real(), b[i].real()) << i;
    EXPECT_EQ(a[i].imag(), b[i].imag()) << i;
  }
}

TEST_P(PaperKernelTest, InstructionMixAcleVsAutovec) {
  // Deterministic dynamic instruction counts for the two strategies
  // (paper Sec. IV-B vs IV-C).  With L = f64 lanes and n complex numbers:
  //   ACLE:    1 dup + ceil(2n/L) iterations of
  //            {cntd, whilelt, 2 ld1, 2 fcmla, st1} = 7
  //   autovec: 1 ptrue + ceil(n/L) iterations of
  //            {cntd, whilelt, 2 ld2, 2 fmul, fmla, fnmls, st2} = 9
  // The FCMLA path accesses hardware complex arithmetic (no ld2/st2
  // structure traffic); the compiler path never emits FCMLA.
  const std::size_t L = sve::lanes<double>();
  const std::size_t n = 16 * L;  // full vectors only, no tail
  const auto x = cplx_data(n, 11);
  const auto y = cplx_data(n, 12);
  std::vector<cplx> z(n);

  sve::CounterScope acle_scope;
  kernels::mult_cplx_acle(n, reinterpret_cast<const double*>(x.data()),
                          reinterpret_cast<const double*>(y.data()),
                          reinterpret_cast<double*>(z.data()));
  const auto acle = acle_scope.delta();

  sve::CounterScope auto_scope;
  kernels::mult_cplx_autovec(n, x.data(), y.data(), z.data());
  const auto autovec = auto_scope.delta();

  const std::size_t acle_iters = (2 * n + L - 1) / L;
  const std::size_t auto_iters = (n + L - 1) / L;
  EXPECT_EQ(acle.total(), 1 + 7 * acle_iters);
  EXPECT_EQ(autovec.total(), 1 + 9 * auto_iters);

  EXPECT_EQ(acle[sve::InsnClass::kFCmla], 2 * acle_iters);
  EXPECT_EQ(acle[sve::InsnClass::kStructLoad], 0u);  // no ld2/st2 on this path
  EXPECT_EQ(autovec[sve::InsnClass::kFCmla], 0u);  // no FCMLA from "the compiler"
  EXPECT_EQ(autovec[sve::InsnClass::kStructLoad], 2 * auto_iters);
  EXPECT_EQ(autovec[sve::InsnClass::kStructStore], auto_iters);
}

TEST_P(PaperKernelTest, FixedVariantHasNoLoopOverhead) {
  const std::size_t n = kernels::cplx_per_vector();
  const auto x = cplx_data(n, 13);
  const auto y = cplx_data(n, 14);
  std::vector<cplx> z(n);

  sve::CounterScope fixed_scope;
  kernels::mult_cplx_acle_fixed(reinterpret_cast<const double*>(x.data()),
                                reinterpret_cast<const double*>(y.data()),
                                reinterpret_cast<double*>(z.data()));
  const auto fixed = fixed_scope.delta();

  sve::CounterScope loop_scope;
  kernels::mult_cplx_acle(n, reinterpret_cast<const double*>(x.data()),
                          reinterpret_cast<const double*>(y.data()),
                          reinterpret_cast<double*>(z.data()));
  const auto loop = loop_scope.delta();

  // Same data processed; the fixed variant spends fewer predicate/loop
  // bookkeeping instructions (ptrue once vs whilelt + cntd per iteration).
  EXPECT_LE(fixed.total(), loop.total());
  EXPECT_EQ(fixed[sve::InsnClass::kFCmla], 2u);
  // Paper Sec. IV-D listing: ptrue, 2 loads, mov(dup), 2 fcmla, 1 store = 7.
  EXPECT_EQ(fixed.total(), 7u);
}

INSTANTIATE_TEST_SUITE_P(AllVL, PaperKernelTest,
                         ::testing::ValuesIn(sve::testing::all_vector_lengths()));

}  // namespace
}  // namespace svelat
