// Predicate intrinsic tests across all vector lengths.
#include <gtest/gtest.h>

#include "sve/sve.h"
#include "sve_test_util.h"

namespace svelat::sve {
namespace {

using testing::VLTest;

class PredTest : public VLTest {};

TEST_P(PredTest, PtrueActivatesAllElements) {
  const svbool_t pd = svptrue_b64();
  const svbool_t ps = svptrue_b32();
  const svbool_t ph = svptrue_b16();
  for (unsigned i = 0; i < lanes<double>(); ++i)
    EXPECT_TRUE(detail::pred_elem<double>(pd, i)) << i;
  for (unsigned i = 0; i < lanes<float>(); ++i)
    EXPECT_TRUE(detail::pred_elem<float>(ps, i)) << i;
  for (unsigned i = 0; i < lanes<std::uint16_t>(); ++i)
    EXPECT_TRUE(detail::pred_elem<std::uint16_t>(ph, i)) << i;
}

TEST_P(PredTest, PtrueElementGranularity) {
  // ptrue.d sets only the first byte of each 64-bit element, like hardware.
  const svbool_t pd = svptrue_b64();
  for (unsigned b = 0; b < vector_bytes(); ++b) {
    EXPECT_EQ(pd.byte[b], b % 8 == 0) << b;
  }
}

TEST_P(PredTest, PfalseDeactivatesEverything) {
  const svbool_t p = svpfalse_b();
  for (unsigned b = 0; b < vector_bytes(); ++b) EXPECT_FALSE(p.byte[b]);
  EXPECT_FALSE(svptest_any(svptrue_b8(), p));
}

TEST_P(PredTest, WhileltPartial) {
  const unsigned nd = lanes<double>();
  // Ask for 3 elements starting at 0: exactly min(3, nd) active.
  const svbool_t p = svwhilelt_b64(0, 3);
  for (unsigned i = 0; i < nd; ++i)
    EXPECT_EQ(detail::pred_elem<double>(p, i), i < 3u) << i;
}

TEST_P(PredTest, WhileltOffset) {
  const unsigned nd = lanes<double>();
  // Elements j with 5 + j < 7 active: j in {0, 1}.
  const svbool_t p = svwhilelt_b64(5, 7);
  for (unsigned i = 0; i < nd; ++i)
    EXPECT_EQ(detail::pred_elem<double>(p, i), i < 2u) << i;
}

TEST_P(PredTest, WhileltBeyondEndIsEmpty) {
  const svbool_t p = svwhilelt_b64(10, 10);
  EXPECT_FALSE(svptest_any(svptrue_b8(), p));
}

TEST_P(PredTest, WhileltFullEqualsPtrue) {
  const unsigned nd = lanes<double>();
  const svbool_t a = svwhilelt_b64(0, nd);
  const svbool_t b = svptrue_b64();
  for (unsigned i = 0; i < nd; ++i)
    EXPECT_EQ(detail::pred_elem<double>(a, i), detail::pred_elem<double>(b, i));
}

TEST_P(PredTest, ElementCounts) {
  EXPECT_EQ(svcntb(), vector_bytes());
  EXPECT_EQ(svcnth(), vector_bytes() / 2);
  EXPECT_EQ(svcntw(), vector_bytes() / 4);
  EXPECT_EQ(svcntd(), vector_bytes() / 8);
}

TEST_P(PredTest, CntpCountsActive) {
  const svbool_t pg = svptrue_b64();
  EXPECT_EQ(svcntp_b64(pg, svwhilelt_b64(0, 2)), std::min<std::uint64_t>(2, lanes<double>()));
  EXPECT_EQ(svcntp_b64(pg, svptrue_b64()), lanes<double>());
  EXPECT_EQ(svcntp_b64(pg, svpfalse_b()), 0u);
}

TEST_P(PredTest, PredicateLogicals) {
  const svbool_t pg = svptrue_b64();
  const svbool_t a = svwhilelt_b64(0, 3);
  const svbool_t b = svwhilelt_b64(0, 1);
  const svbool_t andp = svand_b_z(pg, a, b);
  const svbool_t orp = svorr_b_z(pg, a, b);
  const svbool_t eorp = sveor_b_z(pg, a, b);
  const svbool_t notb = svnot_b_z(pg, b);
  const unsigned nd = lanes<double>();
  for (unsigned i = 0; i < nd; ++i) {
    const bool ai = i < 3u, bi = i < 1u;
    EXPECT_EQ(detail::pred_elem<double>(andp, i), ai && bi) << i;
    EXPECT_EQ(detail::pred_elem<double>(orp, i), ai || bi) << i;
    EXPECT_EQ(detail::pred_elem<double>(eorp, i), ai != bi) << i;
    EXPECT_EQ(detail::pred_elem<double>(notb, i), !bi) << i;
  }
}

TEST_P(PredTest, PtestFirst) {
  EXPECT_TRUE(svptest_first(svptrue_b64(), svwhilelt_b64(0, 1)));
  EXPECT_FALSE(svptest_first(svptrue_b64(), svpfalse_b()));
}

TEST_P(PredTest, VlaLoopCoversExactlyNElements) {
  // The canonical VLA loop of paper Sec. IV-C: iterate i += svcntd() with
  // pg = whilelt(i, n); every element in [0, n) must be covered exactly once.
  const std::uint64_t n = 2 * lanes<double>() + 3;
  std::vector<unsigned> covered(n, 0);
  for (std::uint64_t i = 0; i < n; i += svcntd()) {
    const svbool_t pg = svwhilelt_b64(i, n);
    for (unsigned j = 0; j < lanes<double>(); ++j)
      if (detail::pred_elem<double>(pg, j)) ++covered[i + j];
  }
  for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(covered[i], 1u) << i;
}

INSTANTIATE_TEST_SUITE_P(AllVL, PredTest,
                         ::testing::ValuesIn(testing::all_vector_lengths()));

}  // namespace
}  // namespace svelat::sve
