// Load / store intrinsic tests.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/aligned.h"
#include "sve/sve.h"
#include "sve_test_util.h"

namespace svelat::sve {
namespace {

using testing::VLTest;

class MemTest : public VLTest {};

TEST_P(MemTest, Ld1St1Roundtrip) {
  const unsigned n = lanes<double>();
  AlignedVector<double> src(n), dst(n, -1.0);
  std::iota(src.begin(), src.end(), 1.0);
  const svbool_t pg = svptrue_b64();
  const svfloat64_t v = svld1(pg, src.data());
  svst1(pg, dst.data(), v);
  EXPECT_EQ(src, dst);
}

TEST_P(MemTest, PredicatedLoadZeroesInactive) {
  const unsigned n = lanes<double>();
  AlignedVector<double> src(n, 5.0);
  const svbool_t pg = svwhilelt_b64(0, 2);
  const svfloat64_t v = svld1(pg, src.data());
  for (unsigned i = 0; i < n; ++i) EXPECT_EQ(v.lane[i], i < 2u ? 5.0 : 0.0) << i;
}

TEST_P(MemTest, PredicatedStoreLeavesInactiveMemory) {
  const unsigned n = lanes<double>();
  AlignedVector<double> dst(n, 7.0);
  const svfloat64_t v = svdup_f64(1.0);
  svst1(svwhilelt_b64(0, 1), dst.data(), v);
  EXPECT_EQ(dst[0], 1.0);
  for (unsigned i = 1; i < n; ++i) EXPECT_EQ(dst[i], 7.0) << i;
}

TEST_P(MemTest, Ld2DeinterleavesComplexLayout) {
  // The armclang strategy for std::complex loops (paper Sec. IV-B): ld2d
  // splits interleaved (re, im) pairs into two registers.
  const unsigned n = lanes<double>();
  AlignedVector<double> src(2 * n);
  for (unsigned i = 0; i < n; ++i) {
    src[2 * i] = 100.0 + i;  // re
    src[2 * i + 1] = 200.0 + i;  // im
  }
  const svbool_t pg = svptrue_b64();
  const svfloat64x2_t t = svld2(pg, src.data());
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_EQ(t.reg[0].lane[i], 100.0 + i) << i;
    EXPECT_EQ(t.reg[1].lane[i], 200.0 + i) << i;
  }
}

TEST_P(MemTest, St2ReassemblesStructures) {
  const unsigned n = lanes<double>();
  AlignedVector<double> dst(2 * n, 0.0);
  svfloat64x2_t t;
  for (unsigned i = 0; i < n; ++i) {
    t.reg[0].lane[i] = 1.0 + i;
    t.reg[1].lane[i] = -1.0 - i;
  }
  svst2(svptrue_b64(), dst.data(), t);
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_EQ(dst[2 * i], 1.0 + i);
    EXPECT_EQ(dst[2 * i + 1], -1.0 - i);
  }
}

TEST_P(MemTest, Ld2St2RoundtripPredicated) {
  const unsigned n = lanes<double>();
  if (n < 2) GTEST_SKIP();
  AlignedVector<double> src(2 * n), dst(2 * n, -9.0);
  std::iota(src.begin(), src.end(), 0.0);
  const svbool_t pg = svwhilelt_b64(0, n - 1);  // last structure inactive
  svst2(pg, dst.data(), svld2(pg, src.data()));
  for (unsigned i = 0; i < n - 1; ++i) {
    EXPECT_EQ(dst[2 * i], src[2 * i]);
    EXPECT_EQ(dst[2 * i + 1], src[2 * i + 1]);
  }
  EXPECT_EQ(dst[2 * (n - 1)], -9.0);
  EXPECT_EQ(dst[2 * (n - 1) + 1], -9.0);
}

TEST_P(MemTest, Ld3Ld4Deinterleave) {
  const unsigned n = lanes<float>();
  AlignedVector<float> src3(3 * n), src4(4 * n);
  std::iota(src3.begin(), src3.end(), 0.0f);
  std::iota(src4.begin(), src4.end(), 0.0f);
  const svbool_t pg = svptrue_b32();
  const auto t3 = svld3(pg, src3.data());
  const auto t4 = svld4(pg, src4.data());
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < 3; ++j) EXPECT_EQ(t3.reg[j].lane[i], src3[3 * i + j]);
    for (unsigned j = 0; j < 4; ++j) EXPECT_EQ(t4.reg[j].lane[i], src4[4 * i + j]);
  }
}

TEST_P(MemTest, St3St4Roundtrip) {
  const unsigned n = lanes<float>();
  AlignedVector<float> src3(3 * n), dst3(3 * n, 0.0f);
  AlignedVector<float> src4(4 * n), dst4(4 * n, 0.0f);
  std::iota(src3.begin(), src3.end(), 1.0f);
  std::iota(src4.begin(), src4.end(), 1.0f);
  const svbool_t pg = svptrue_b32();
  svst3(pg, dst3.data(), svld3(pg, src3.data()));
  svst4(pg, dst4.data(), svld4(pg, src4.data()));
  EXPECT_EQ(src3, dst3);
  EXPECT_EQ(src4, dst4);
}

TEST_P(MemTest, FloatAndHalfLanes) {
  const unsigned nf = lanes<float>();
  AlignedVector<float> fsrc(nf);
  std::iota(fsrc.begin(), fsrc.end(), 0.5f);
  const svfloat32_t vf = svld1(svptrue_b32(), fsrc.data());
  for (unsigned i = 0; i < nf; ++i) EXPECT_EQ(vf.lane[i], fsrc[i]);

  const unsigned nh = lanes<half>();
  AlignedVector<half> hsrc(nh);
  for (unsigned i = 0; i < nh; ++i) hsrc[i] = half(static_cast<float>(i));
  const svfloat16_t vh = svld1(svptrue_b16(), hsrc.data());
  for (unsigned i = 0; i < nh; ++i) EXPECT_EQ(float(vh.lane[i]), static_cast<float>(i));
}

TEST_P(MemTest, GatherScatter) {
  const unsigned n = lanes<double>();
  AlignedVector<double> table(4 * n);
  std::iota(table.begin(), table.end(), 0.0);
  svuint64_t idx;
  for (unsigned i = 0; i < svuint64_t::kMaxLanes; ++i) idx.lane[i] = (3 * i) % (4 * n);
  const svfloat64_t v = svld1_gather_index(svptrue_b64(), table.data(), idx);
  for (unsigned i = 0; i < n; ++i) EXPECT_EQ(v.lane[i], table[(3 * i) % (4 * n)]);

  AlignedVector<double> out(4 * n, 0.0);
  svst1_scatter_index(svptrue_b64(), out.data(), idx, v);
  for (unsigned i = 0; i < n; ++i) EXPECT_EQ(out[(3 * i) % (4 * n)], v.lane[i]);
}

TEST_P(MemTest, NonTemporalSameSemantics) {
  const unsigned n = lanes<double>();
  AlignedVector<double> src(n), dst(n, 0.0);
  std::iota(src.begin(), src.end(), 2.0);
  const svbool_t pg = svptrue_b64();
  svstnt1(pg, dst.data(), svldnt1(pg, src.data()));
  EXPECT_EQ(src, dst);
}

INSTANTIATE_TEST_SUITE_P(AllVL, MemTest,
                         ::testing::ValuesIn(testing::all_vector_lengths()));

}  // namespace
}  // namespace svelat::sve
